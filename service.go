package copse

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"copse/internal/bgv"
	"copse/internal/core"
	"copse/internal/he"
	"copse/internal/he/hebgv"
	"copse/internal/he/heclear"
	"copse/internal/hist"
	"copse/internal/matrix"
)

// Service is the concurrent, batched serving layer: a registry of
// compiled models staged onto one shared backend (one key set), with
// slot-packed multi-query classification and a concurrency contract —
// every method is safe to call from many goroutines.
//
// Where System wires the paper's three notional parties around a single
// model, Service is the deployment shape of the related outsourcing
// work: a server holding several staged models, answering batches of
// up to Meta.BatchCapacity() queries per homomorphic pass, under an
// optional in-flight limit with queue-wait and latency accounting.
//
//	svc := copse.NewService(
//		copse.WithBackend(copse.BackendBGV),
//		copse.WithSecurity(copse.SecurityTest),
//		copse.WithWorkers(8),
//	)
//	svc.Register("fraud", compiled)
//	results, err := svc.ClassifyBatch(ctx, "fraud", batch)
type Service struct {
	cfg serviceConfig

	mu          sync.RWMutex
	backend     he.Backend
	models      map[string]*servedModel
	aggregators map[string]*aggregator // per-model dynamic batchers (lazy)

	sem chan struct{} // in-flight limiter; nil = unlimited

	// closing is closed by Close; runCtx is the lifetime context shared
	// passes run under (a cancelled waiter must not cancel its pass).
	closing   chan struct{}
	closeOnce sync.Once
	runCtx    context.Context
	runCancel context.CancelFunc

	shuffleSeq atomic.Uint64 // per-pass shuffle seed sequence

	requests  atomic.Int64
	queries   atomic.Int64
	failures  atomic.Int64
	inFlight  atomic.Int64
	queueNS   atomic.Int64
	latencyNS atomic.Int64

	// Resilience counters (DESIGN.md §15). queued tracks calls waiting
	// for an in-flight slot (the shed-queue depth); the others are
	// included in Failures.
	queued          atomic.Int64
	shed            atomic.Int64
	deadlineRejects atomic.Int64
	panicsRecovered atomic.Int64

	// Dynamic-batcher counters (DESIGN.md §11).
	aggPasses  atomic.Int64
	aggQueries atomic.Int64
	aggFillNum atomic.Int64
	aggFillDen atomic.Int64
	aggWaitNS  atomic.Int64
}

// servedModel is one registry entry: the compiled model staged onto the
// service backend plus its (stateless, concurrency-safe) engine.
type servedModel struct {
	compiled *Compiled
	operands *core.ModelOperands
	engine   *core.Engine
	latency  *hist.Histogram // per-pass classification latency
}

type serviceConfig struct {
	backend          BackendKind
	scenario         Scenario
	security         SecurityPreset
	workers          int
	intraOpWorkers   int
	noVectorKernels  bool
	maxInFlight      int
	levels           int
	seed             uint64
	reuseRotations   bool
	disableHoisting  bool
	disableLevelPlan bool
	noSpecialize     bool
	shuffle          bool
	measureNoise     bool
	batch            BatchPolicy
	extBackend       he.Backend
	shedQueue        int
}

// Option configures a Service (functional options).
type Option func(*serviceConfig)

// WithBackend selects the homomorphic backend (default BackendBGV).
func WithBackend(k BackendKind) Option { return func(c *serviceConfig) { c.backend = k } }

// WithScenario selects the party configuration governing what is
// encrypted (default ScenarioOffload: model and features both
// encrypted).
func WithScenario(s Scenario) Option { return func(c *serviceConfig) { c.scenario = s } }

// WithSecurity selects the BGV parameter preset (default SecurityTest).
func WithSecurity(p SecurityPreset) Option { return func(c *serviceConfig) { c.security = p } }

// WithWorkers sets the intra-query parallelism of each classification
// (the paper's multithreaded mode); 0 or 1 means single-threaded.
func WithWorkers(n int) Option { return func(c *serviceConfig) { c.workers = n } }

// WithIntraOpWorkers sets the ring-layer limb parallelism of the BGV
// backend: every NTT, key switch and modulus switch fans its RNS limbs
// across an n-way worker pool (results are bit-identical to serial).
// The default (0) derives n from a shared core budget — query workers ×
// in-flight passes × limb workers ≤ NumCPU, so the service's layered
// parallelism does not oversubscribe the host (with no WithMaxInFlight
// cap the budget assumes one pass at a time) — which on a machine
// without spare cores per worker means serial. 1 forces serial; n ≥ 2
// is used as given (explicit oversubscription is allowed, e.g. for
// tests). The clear backend has no ring layer and ignores this option.
func WithIntraOpWorkers(n int) Option { return func(c *serviceConfig) { c.intraOpWorkers = n } }

// WithVectorKernels controls the ring layer's vectorized (SIMD) NTT and
// pointwise kernels on the BGV backend. They are on by default wherever
// the host CPU and the prime chain support them, and produce results
// bit-identical to the portable scalar kernels; false pins the scalar
// path (the copse-bench -novec ablation, DESIGN.md §14). The clear
// backend has no ring layer and ignores this option.
func WithVectorKernels(on bool) Option { return func(c *serviceConfig) { c.noVectorKernels = !on } }

// WithMaxInFlight caps how many classifications run concurrently;
// excess calls queue (their wait is reported by Stats). 0 means
// unlimited.
func WithMaxInFlight(n int) Option { return func(c *serviceConfig) { c.maxInFlight = n } }

// WithShedQueue bounds how many calls may wait for an in-flight slot
// before the service sheds load: once all WithMaxInFlight slots are
// busy and n calls are already queued, further calls fail immediately
// with a typed *OverloadError (HTTP 429 + Retry-After in copse-serve)
// instead of growing an unbounded backlog of doomed work. 0 (the
// default) queues without bound; the option has no effect without
// WithMaxInFlight.
func WithShedQueue(n int) Option { return func(c *serviceConfig) { c.shedQueue = n } }

// WithLevels overrides the compiler's recommended BGV chain length.
func WithLevels(n int) Option { return func(c *serviceConfig) { c.levels = n } }

// WithSeed makes key generation and encryption deterministic (tests and
// reproducible experiments only — never production). Under WithShuffle
// it also fixes the shuffle-seed sequence, so anyone who knows the seed
// can regenerate every pass's permutations and undo the §7.2.2 leakage
// hardening; shuffled production services must leave the seed zero
// (per-pass random seeds).
func WithSeed(seed uint64) Option { return func(c *serviceConfig) { c.seed = seed } }

// WithReuseRotations toggles the naive-kernel rotation-reuse ablation
// (DESIGN.md §6); BSGS-staged models always share baby-step rotations.
func WithReuseRotations(on bool) Option { return func(c *serviceConfig) { c.reuseRotations = on } }

// WithHoisting toggles hoisted key switching (default on); disabling it
// is the ablation knob of DESIGN.md §6.
func WithHoisting(on bool) Option { return func(c *serviceConfig) { c.disableHoisting = !on } }

// WithLevelPlan toggles static level scheduling (default on): with a
// plan-carrying model, operands are staged at their scheduled levels,
// the engine drops ciphertexts at stage boundaries, and the BGV chain is
// sized to the plan's top instead of the reactive recommendation.
// Disabling it is the -nolevelplan ablation knob of DESIGN.md §8.
func WithLevelPlan(on bool) Option { return func(c *serviceConfig) { c.disableLevelPlan = !on } }

// WithShuffle enables result shuffling (paper §7.2.2) on every
// classification pass: each packed query's leaf slots are permuted by a
// per-pass, per-block random permutation — one block-diagonal kernel
// pass for the whole batch (DESIGN.md §10) — so the decrypted result no
// longer reveals the order of the labels in the forest's trees. Results
// decode through the per-query codebooks carried on the EncryptedResult
// (DecryptResult[Batch] handles this transparently); per-tree labels are
// unrecoverable by design, only vote counts remain. On the BGV backend
// models must be compiled with CompileOptions.PlanShuffle (or served
// reactively) so the classification result keeps the shuffle's level
// headroom — Register rejects models that don't.
func WithShuffle(on bool) Option { return func(c *serviceConfig) { c.shuffle = on } }

// WithSpecialization toggles the model-specialized op-program executor
// (default on): Register compiles each model into a flat op schedule
// (or dispatches to a linked generated kernel) and Classify runs it
// instead of the generic interpreter (DESIGN.md §13). Disabling it is
// the `copse-bench -nospecialize` ablation baseline; outputs are
// bit-identical either way.
func WithSpecialization(on bool) Option { return func(c *serviceConfig) { c.noSpecialize = !on } }

// WithNoiseMeasurement records the decrypt-side measured noise budget of
// the pipeline carrier at every stage boundary in each pass's
// Trace.Noise (the BENCH_levels.json margin corpus). Measurement
// decrypts, so it requires the secret key and costs one decryption per
// stage — a benchmarking knob, not a serving default.
func WithNoiseMeasurement(on bool) Option { return func(c *serviceConfig) { c.measureNoise = on } }

// WithExternalBackend hands the service a pre-built backend instead of
// letting the first Register construct one. This is how cluster worker
// nodes share one wire-distributed key set: every worker builds the
// same hebgv backend from the shard manifest (or from serialized key
// material) and its service stages shard models onto it. The service
// takes ownership — Close closes the backend. The backend must match
// every registered model's slot count; the usual security/levels/seed
// options are ignored for backend construction.
func WithExternalBackend(b he.Backend) Option { return func(c *serviceConfig) { c.extBackend = b } }

// NewService returns an empty service. The backend (and, for BGV, the
// key set) is created by the first Register call, which fixes the slot
// count; every later model must be staged for the same count.
func NewService(opts ...Option) *Service {
	cfg := serviceConfig{backend: BackendBGV, scenario: ScenarioOffload, security: SecurityTest}
	for _, opt := range opts {
		opt(&cfg)
	}
	s := &Service{
		cfg:         cfg,
		models:      map[string]*servedModel{},
		aggregators: map[string]*aggregator{},
		closing:     make(chan struct{}),
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	if cfg.maxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.maxInFlight)
	}
	return s
}

// newBackend builds the shared backend for a first registered model.
func (s *Service) newBackend(c *Compiled) (he.Backend, error) {
	switch s.cfg.backend {
	case BackendClear:
		return heclear.New(c.Meta.Slots, 65537), nil
	case BackendBGV:
		levels := s.cfg.levels
		if levels == 0 {
			levels = c.Meta.RecommendedLevels
			if plan := c.Meta.LevelPlan; plan != nil && !s.cfg.disableLevelPlan {
				// The scheduled pipeline tops out at the plan's compare
				// entry: a shorter chain means smaller keys, cheaper key
				// generation, and every top-level op running over the
				// fraction of the chain the schedule actually uses.
				if encModel, _, err := scenarioEncryption(s.cfg.scenario); err == nil {
					levels = min(plan.ChainLevels(encModel), levels)
				}
			}
		}
		var params bgv.Params
		switch s.cfg.security {
		case SecurityTest:
			params = bgv.TestParams(levels)
		case SecurityDemo:
			params = bgv.DemoParams(levels)
		case Security128:
			params = bgv.Secure128Params(levels)
		default:
			return nil, fmt.Errorf("copse: unknown security preset %d", s.cfg.security)
		}
		if slots := 1 << (params.LogN - 1); slots != c.Meta.Slots {
			return nil, fmt.Errorf("copse: model staged for %d slots but preset provides %d; recompile with Slots=%d",
				c.Meta.Slots, slots, slots)
		}
		params.IntraOpWorkers = s.intraOpBudget()
		params.DisableVectorKernels = s.cfg.noVectorKernels
		// Galois-key level budget: steps the level plan proves are only
		// rotated in the scheduled-down back half get their keys
		// generated at that stage's level instead of the chain top
		// (several-fold less key material on BSGS step sets; the
		// composed-rotation ladder stays at the top as the fallback for
		// later-registered models with different schedules).
		var stepLevels map[int]int
		if !s.cfg.disableLevelPlan {
			if encModel, _, err := scenarioEncryption(s.cfg.scenario); err == nil {
				stepLevels = c.Meta.RotationStepLevels(encModel)
			}
		}
		return hebgv.New(hebgv.Config{
			Params:             params,
			RotationSteps:      c.Meta.RotationSteps,
			RotationStepLevels: stepLevels,
			Seed:               s.cfg.seed,
		})
	}
	return nil, fmt.Errorf("copse: unknown backend kind %d", s.cfg.backend)
}

// intraOpBudget resolves WithIntraOpWorkers against the shared core
// budget: an explicit setting wins (1 = serial), the default splits
// NumCPU across the concurrency the service itself creates — intra-
// query stage workers times the in-flight pass cap — so the layered
// parallelism does not oversubscribe the host. With no in-flight cap
// the budget assumes one pass at a time; servers expecting sustained
// concurrent passes should set WithMaxInFlight (or an explicit
// intra-op count) to keep the product bounded.
func (s *Service) intraOpBudget() int {
	n := s.cfg.intraOpWorkers
	if n == 0 {
		n = runtime.NumCPU() / (max(s.cfg.workers, 1) * max(s.cfg.maxInFlight, 1))
	}
	if n < 2 {
		return 0 // serial: no pool
	}
	return n
}

// Close releases backend resources (the ring-layer worker pool) and
// stops every dynamic-batcher goroutine, failing any callers still
// lingering in a forming batch; the service must not be used
// afterwards. Safe to call on a service that never registered a model,
// and idempotent.
func (s *Service) Close() error {
	s.closeOnce.Do(func() {
		close(s.closing) // aggregator goroutines drain and exit
		s.runCancel()
	})
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.backend.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// Register stages a compiled model under a name, sharing the service's
// backend and key set with every other registered model. The first
// registration creates the backend (generating Galois keys for that
// model's rotation-step set plus the power-of-two ladder, on a modulus
// chain sized to that model's level plan); later models must be staged
// for the same slot count, any rotation step they need beyond the first
// model's key set is composed from power-of-two hops — exact steps, a
// few extra key switches — and a later model needing a deeper chain
// than the first model's plan has its schedule clamped to the available
// top. Register a service's largest/deepest model first to give it the
// exact keys and chain (or fix the chain with WithLevels).
func (s *Service) Register(name string, c *Compiled) error {
	if name == "" {
		return fmt.Errorf("copse: empty model name")
	}
	encryptModel, _, err := scenarioEncryption(s.cfg.scenario)
	if err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.models[name]; dup {
		return fmt.Errorf("copse: model %q already registered", name)
	}
	if s.backend == nil {
		if s.cfg.extBackend != nil {
			s.backend = s.cfg.extBackend
		} else {
			b, err := s.newBackend(c)
			if err != nil {
				return err
			}
			s.backend = b
		}
	}
	if s.backend.Slots() != c.Meta.Slots {
		return fmt.Errorf("copse: model %q staged for %d slots but service backend has %d",
			name, c.Meta.Slots, s.backend.Slots())
	}
	plan := c.Meta.LevelPlan
	if s.cfg.disableLevelPlan {
		plan = nil
	}
	// A shuffled service on a leveled backend needs the classification
	// result to land at (or above) the shuffle's entry level. A schedule
	// compiled without PlanShuffle lands it below, and every shuffled
	// pass would fail — reject the staging mistake up front. Backends
	// without a level structure (the clear reference) shuffle at any
	// level.
	if _, leveled := s.backend.(he.LevelDropper); s.cfg.shuffle && leveled && plan != nil {
		if st := plan.For(encryptModel); st.Final < plan.ShuffleLevel() {
			return fmt.Errorf("copse: model %q schedules its result at level %d, below the shuffle entry level %d; recompile with CompileOptions.PlanShuffle for shuffled serving",
				name, st.Final, plan.ShuffleLevel())
		}
	}
	operands, err := core.PrepareWithPlan(s.backend, c, encryptModel, plan)
	if err != nil {
		return err
	}
	s.models[name] = &servedModel{
		compiled: c,
		operands: operands,
		latency:  hist.New(),
		engine: &core.Engine{
			Backend:           s.backend,
			Workers:           s.cfg.workers,
			SkipZeroDiagonals: !encryptModel,
			ReuseRotations:    s.cfg.reuseRotations,
			DisableHoisting:   s.cfg.disableHoisting,
			DisableLevelPlan:  s.cfg.disableLevelPlan,
			MeasureNoise:      s.cfg.measureNoise,

			DisableSpecialization: s.cfg.noSpecialize,
		},
	}
	return nil
}

// Models returns the registered model names, sorted.
func (s *Service) Models() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.models))
	for name := range s.models {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (s *Service) lookup(name string) (*servedModel, he.Backend, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.models[name]
	if !ok {
		return nil, nil, fmt.Errorf("copse: model %q not registered", name)
	}
	return m, s.backend, nil
}

// Meta returns the public parameters of a registered model.
func (s *Service) Meta(name string) (*Meta, error) {
	m, _, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	return &m.operands.Meta, nil
}

// BatchCapacity returns how many queries one classification pass of the
// named model can answer (Meta.BatchCapacity).
func (s *Service) BatchCapacity(name string) (int, error) {
	m, _, err := s.lookup(name)
	if err != nil {
		return 0, err
	}
	return m.operands.Meta.BatchCapacity(), nil
}

// ServerView reports what the evaluating server can infer about the
// named model from artifact shapes alone (the executable form of
// Table 3's leakage).
func (s *Service) ServerView(name string) (core.ServerView, error) {
	m, _, err := s.lookup(name)
	if err != nil {
		return core.ServerView{}, err
	}
	return core.InferServerView(m.operands), nil
}

// Backend exposes the shared backend (op counting and diagnostics); nil
// before the first Register.
func (s *Service) Backend() he.Backend {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.backend
}

// EncryptQuery prepares a single feature vector for the named model.
func (s *Service) EncryptQuery(name string, features []uint64) (*Query, error) {
	return s.EncryptQueryBatch(name, [][]uint64{features})
}

// EncryptQueryBatch slot-packs feature vectors into encrypted query
// sets. Up to BatchCapacity vectors share one set and one Classify
// pass answers all of them; a larger batch is split transparently into
// a chain of capacity-sized sets (Query.Next) which Classify runs as
// ceil(len/capacity) passes — the service boundary never surfaces the
// low-level *core.BatchCapacityError, which remains the contract of
// the single-pass core.PrepareQueryBatch API.
func (s *Service) EncryptQueryBatch(name string, batch [][]uint64) (*Query, error) {
	m, backend, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	_, encFeats, err := scenarioEncryption(s.cfg.scenario)
	if err != nil {
		return nil, err
	}
	meta := &m.operands.Meta
	capacity := meta.BatchCapacity()
	if len(batch) <= capacity {
		return s.prepareBatch(backend, meta, batch, encFeats)
	}
	var head *Query
	var tail *Query
	for lo := 0; lo < len(batch); lo += capacity {
		q, err := s.prepareBatch(backend, meta, batch[lo:min(lo+capacity, len(batch))], encFeats)
		if err != nil {
			return nil, err
		}
		if head == nil {
			head = q
		} else {
			tail.Next = q
		}
		tail = q
	}
	return head, nil
}

// prepareBatch runs one core.PrepareQueryBatch pass with the same
// panic isolation as the classify pipeline: encryption panics — direct
// or recovered inside a matrix worker — surface as a typed
// *InternalError on this request only.
func (s *Service) prepareBatch(backend he.Backend, meta *core.Meta, batch [][]uint64, encFeats bool) (q *Query, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panicsRecovered.Add(1)
			q = nil
			err = &InternalError{Op: "encrypt", Value: r, Stack: debug.Stack()}
		}
	}()
	q, err = core.PrepareQueryBatch(backend, meta, batch, encFeats)
	var pe *matrix.PanicError
	if errors.As(err, &pe) {
		s.panicsRecovered.Add(1)
		err = &InternalError{Op: "encrypt", Value: pe.Value, Stack: pe.Stack}
	}
	return q, err
}

// Classify runs Algorithm 1 on a prepared (possibly batched) query.
// It is safe to call from many goroutines; with WithMaxInFlight set,
// excess calls queue (cancellable while queued) and the wait shows up
// in Stats. The context is also checked between pipeline stages. A
// query chained across several sets (EncryptQueryBatch of more than
// BatchCapacity vectors) runs one pass per link — concurrently, under
// the in-flight cap — and returns one combined result; the trace then
// aggregates the links (durations and op bills summed).
func (s *Service) Classify(ctx context.Context, name string, q *Query) (*EncryptedResult, *Trace, error) {
	if q.Next == nil {
		return s.classify(ctx, name, q, 0)
	}
	var links []*Query
	for l := q; l != nil; l = l.Next {
		links = append(links, l)
	}
	var shuffleBase uint64
	if s.cfg.shuffle {
		// One seed per link, reserved up front: seeded runs reproduce
		// regardless of which link's goroutine runs first.
		shuffleBase = s.shuffleSeedBlock(len(links))
	}
	workers := len(links)
	if s.cfg.maxInFlight > 0 {
		workers = min(workers, s.cfg.maxInFlight)
	}
	workers = min(workers, runtime.GOMAXPROCS(0))
	encs := make([]*EncryptedResult, len(links))
	traces := make([]*Trace, len(links))
	err := matrix.ParallelFor(len(links), workers, func(i int) error {
		var seed uint64
		if s.cfg.shuffle {
			seed = shuffleBase + uint64(i)*shuffleSeedStride
		}
		enc, trace, err := s.classify(ctx, name, links[i], seed)
		if err != nil {
			return err
		}
		encs[i], traces[i] = enc, trace
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	merged := &EncryptedResult{}
	trace := &Trace{}
	for i, enc := range encs {
		merged.segs = append(merged.segs, enc.segs...)
		addTrace(trace, traces[i])
	}
	return merged, trace, nil
}

// addTrace accumulates one pass's trace into an aggregate: durations
// and op bills sum, limb/noise fields keep the first pass's view.
func addTrace(dst, src *Trace) {
	if src == nil {
		return
	}
	dst.Compare += src.Compare
	dst.Reshuffle += src.Reshuffle
	dst.Levels += src.Levels
	dst.Accumulate += src.Accumulate
	dst.Shuffle += src.Shuffle
	dst.Total += src.Total
	dst.CompareOps = dst.CompareOps.Plus(src.CompareOps)
	dst.ReshuffleOps = dst.ReshuffleOps.Plus(src.ReshuffleOps)
	dst.LevelOps = dst.LevelOps.Plus(src.LevelOps)
	dst.AccumulateOps = dst.AccumulateOps.Plus(src.AccumulateOps)
	dst.ShuffleOps = dst.ShuffleOps.Plus(src.ShuffleOps)
	if dst.Limbs == (core.StageLimbs{}) {
		dst.Limbs = src.Limbs
	}
	if dst.Noise == (core.StageNoise{}) {
		dst.Noise = src.Noise
	}
	if dst.Executor == "" {
		dst.Executor = src.Executor
	}
}

// classify is Classify with an optional shuffle-seed override (0 means
// draw from the service's per-pass sequence) — classifyChunks pins a
// deterministic seed per chunk so seeded multi-chunk batches reproduce
// regardless of which chunk's goroutine runs first.
func (s *Service) classify(ctx context.Context, name string, q *Query, shuffleSeed uint64) (*EncryptedResult, *Trace, error) {
	m, backend, err := s.lookup(name)
	if err != nil {
		return nil, nil, err
	}
	// Deadline fast-fail: once the model has latency history, a request
	// whose remaining budget cannot cover even a typical pass is rejected
	// before any homomorphic work is spent on it (DESIGN.md §15).
	if deadline, ok := ctx.Deadline(); ok {
		if est := passEstimate(m); est > 0 {
			if remaining := time.Until(deadline); remaining < est {
				s.deadlineRejects.Add(1)
				s.failures.Add(1)
				return nil, nil, &DeadlineError{Stage: "admit", Remaining: remaining, Needed: est}
			}
		}
	}
	enqueued := time.Now()
	if err := s.admit(ctx, name, m); err != nil {
		return nil, nil, err
	}
	if s.sem != nil {
		defer func() { <-s.sem }()
	}
	// Requests/Queries count passes that reached execution, so a burst
	// of queued-then-cancelled calls (counted in Failures) does not
	// inflate the throughput counters or dilute the latency means.
	s.requests.Add(1)
	s.queries.Add(int64(max(q.Batch, 1)))
	if s.sem != nil {
		s.queueNS.Add(time.Since(enqueued).Nanoseconds())
	}

	s.inFlight.Add(1)
	start := time.Now()
	op, codebooks, trace, err := s.runPipeline(ctx, backend, m, q, shuffleSeed)
	elapsed := time.Since(start)
	s.latencyNS.Add(elapsed.Nanoseconds())
	m.latency.Observe(elapsed)
	s.inFlight.Add(-1)
	if err != nil {
		s.failures.Add(1)
		return nil, nil, err
	}
	return &EncryptedResult{segs: []resultSeg{{op: op, batch: max(q.Batch, 1), codebooks: codebooks}}}, trace, nil
}

// admit acquires an in-flight slot (when WithMaxInFlight is set),
// shedding load with a typed *OverloadError once the bounded wait
// queue (WithShedQueue) is full. The caller releases the slot.
func (s *Service) admit(ctx context.Context, name string, m *servedModel) error {
	if s.sem == nil {
		return nil
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	// All slots busy. With a shed bound, joining the queue is
	// conditional on its depth; without one, wait indefinitely (the
	// pre-shedding behaviour).
	if q := s.cfg.shedQueue; q > 0 {
		if cur := s.queued.Add(1); cur > int64(q) {
			s.queued.Add(-1)
			s.shed.Add(1)
			s.failures.Add(1)
			return &OverloadError{Model: name, Queued: q, RetryAfter: s.retryAfter(m)}
		}
	} else {
		s.queued.Add(1)
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.failures.Add(1)
		return ctx.Err()
	}
}

// runPipeline executes one classification pass (and the optional
// shuffle stage) with panic isolation: a panic anywhere in the
// pipeline — the engine, a generated kernel, a matrix worker goroutine
// (surfaced as *matrix.PanicError) — fails this request with a typed
// *InternalError instead of killing the process and every other
// in-flight pass with it.
func (s *Service) runPipeline(ctx context.Context, backend he.Backend, m *servedModel, q *Query, shuffleSeed uint64) (op he.Operand, codebooks []*core.ShuffledCodebook, trace *core.Trace, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panicsRecovered.Add(1)
			op, codebooks, trace = he.Operand{}, nil, nil
			err = &InternalError{Op: "classify", Value: r, Stack: debug.Stack()}
		}
	}()
	op, trace, err = m.engine.ClassifyCtx(ctx, m.operands, q)
	if err == nil && s.cfg.shuffle {
		// The shuffle is a pipeline stage like any other: honour a
		// cancellation that landed during accumulation before paying for
		// the permutation pass.
		if err = ctx.Err(); err == nil {
			if shuffleSeed == 0 {
				shuffleSeed = s.nextShuffleSeed()
			}
			op, codebooks, err = s.shufflePass(backend, m, op, max(q.Batch, 1), shuffleSeed, trace)
		}
	}
	var pe *matrix.PanicError
	if errors.As(err, &pe) {
		s.panicsRecovered.Add(1)
		err = &InternalError{Op: "classify", Value: pe.Value, Stack: pe.Stack}
	}
	return op, codebooks, trace, err
}

// passEstimate is the model's typical per-pass latency (the observed
// p50), or 0 until enough passes have been recorded to trust it.
func passEstimate(m *servedModel) time.Duration {
	snap := m.latency.Snapshot()
	if snap.Count < 4 {
		return 0
	}
	return snap.Quantile(0.50)
}

// retryAfter estimates when a shed caller should try again: the queue
// it would have joined, drained at one typical pass per in-flight slot.
func (s *Service) retryAfter(m *servedModel) time.Duration {
	est := passEstimate(m)
	if est == 0 {
		est = 100 * time.Millisecond
	}
	waves := 1 + s.cfg.shedQueue/max(s.cfg.maxInFlight, 1)
	return time.Duration(waves) * est
}

// shufflePass applies the per-pass result shuffle: one block-diagonal
// permutation pass over every packed query, at the model's scheduled
// shuffle level, under the same stage-worker budget as the pipeline
// (the ring layer's intra-op pool applies through the shared backend).
// Each pass gets a fresh seed, so no two passes share permutations;
// WithSeed makes the seeds deterministic for tests.
func (s *Service) shufflePass(backend he.Backend, m *servedModel, op he.Operand, batch int, seed uint64, trace *core.Trace) (he.Operand, []*core.ShuffledCodebook, error) {
	mark := time.Now()
	counting := he.WithCounts(backend)
	shuffled, codebooks, err := core.ShuffleResultBatch(counting, &m.operands.Meta, op, batch, 0, seed, max(s.cfg.workers, 1))
	if err != nil {
		return he.Operand{}, nil, fmt.Errorf("copse: result shuffle: %w", err)
	}
	if trace != nil {
		trace.Shuffle = time.Since(mark)
		trace.ShuffleOps = counting.Counts()
		trace.Total += trace.Shuffle
	}
	return shuffled, codebooks, nil
}

// shuffleSeedStride spaces consecutive seeds of the per-pass sequence
// (an odd constant, so the walk covers the whole 2^64 ring).
const shuffleSeedStride = 0x9e3779b97f4a7c15

// nextShuffleSeed returns a fresh per-pass shuffle seed: random by
// default, the next element of a deterministic sequence under WithSeed
// (concurrent direct Classify callers draw in completion order; the
// chunked batch entrypoints reserve a whole block up front instead —
// shuffleSeedBlock — so seeded ClassifyBatch[Shuffled] runs reproduce
// exactly regardless of chunk scheduling).
func (s *Service) nextShuffleSeed() uint64 {
	return s.shuffleSeedBlock(1)
}

// shuffleSeedBlock atomically reserves n consecutive seeds of the
// per-pass sequence and returns the first; the caller derives seed i as
// base + i·shuffleSeedStride. Distinct calls never overlap (the range
// is consumed from the shared counter), so no two passes — chunked or
// direct — share a permutation.
func (s *Service) shuffleSeedBlock(n int) uint64 {
	hi := s.shuffleSeq.Add(uint64(n))
	if s.cfg.seed != 0 {
		return s.cfg.seed + (hi-uint64(n)+1)*shuffleSeedStride
	}
	return rand.Uint64()
}

// DecryptResult decrypts and decodes a single-query classification.
func (s *Service) DecryptResult(name string, r *EncryptedResult) (*Result, error) {
	results, err := s.DecryptResultBatch(name, r)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// DecryptResultBatch decrypts one classification — every pass of a
// chained multi-pass result — and decodes every packed query's result,
// in the order the batch was packed. Shuffled results (WithShuffle)
// decode through their per-query codebooks: the Results carry vote
// counts only — per-tree labels and raw leaf bits are hidden by the
// shuffle, by design.
func (s *Service) DecryptResultBatch(name string, r *EncryptedResult) ([]*Result, error) {
	m, backend, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	meta := &m.operands.Meta
	var out []*Result
	for _, seg := range r.segs {
		slots, err := he.Reveal(backend, seg.op)
		if err != nil {
			return nil, err
		}
		var results []*Result
		if seg.codebooks != nil {
			results, err = core.DecodeShuffledBatch(seg.codebooks, len(meta.LabelNames), slots, meta.BatchBlock())
		} else {
			results, err = core.DecodeResultBatch(meta, slots, max(seg.batch, 1))
		}
		if err != nil {
			return nil, err
		}
		out = append(out, results...)
	}
	return out, nil
}

// ClassifyBatch is the end-to-end serving loop: slot-pack the feature
// vectors, run one homomorphic pass, decrypt and decode per-query
// results. Batches larger than the model's capacity are split into
// ceil(len/capacity) passes which run concurrently (the passes are
// independent and Classify is concurrency-safe), bounded by
// WithMaxInFlight when set and by the host's core count otherwise.
func (s *Service) ClassifyBatch(ctx context.Context, name string, batch [][]uint64) ([]*Result, error) {
	results, _, err := s.classifyChunks(ctx, name, batch)
	return results, err
}

// ClassifyBatchShuffled is ClassifyBatch with the shuffled decoding
// surface exposed: alongside each query's decoded Result (vote counts;
// per-tree labels are hidden by the shuffle) it returns the per-query
// ShuffledCodebook the result was decoded through — what a deployment
// hands the data owner together with the shuffled ciphertext. Requires
// WithShuffle.
func (s *Service) ClassifyBatchShuffled(ctx context.Context, name string, batch [][]uint64) ([]*Result, []*ShuffledCodebook, error) {
	if !s.cfg.shuffle {
		return nil, nil, fmt.Errorf("copse: service built without WithShuffle")
	}
	return s.classifyChunks(ctx, name, batch)
}

// classifyChunks is the shared serving loop behind ClassifyBatch and
// ClassifyBatchShuffled: slot-pack, classify, decrypt, decode —
// chunked to the model's capacity, chunks running concurrently. With
// the dynamic batcher enabled (WithBatchWindow/WithBatchPolicy) the
// request is instead enqueued into the model's aggregator, where it
// shares slot-packed passes with every other concurrent caller.
func (s *Service) classifyChunks(ctx context.Context, name string, batch [][]uint64) ([]*Result, []*ShuffledCodebook, error) {
	if len(batch) == 0 {
		return nil, nil, fmt.Errorf("copse: empty batch")
	}
	if agg, err := s.aggregatorFor(name); err != nil {
		return nil, nil, err
	} else if agg != nil {
		return agg.submit(ctx, batch)
	}
	capacity, err := s.BatchCapacity(name)
	if err != nil {
		return nil, nil, err
	}
	chunks := (len(batch) + capacity - 1) / capacity
	workers := chunks
	if s.cfg.maxInFlight > 0 {
		workers = min(workers, s.cfg.maxInFlight)
	}
	workers = min(workers, runtime.GOMAXPROCS(0))
	out := make([]*Result, len(batch))
	var codebooks []*ShuffledCodebook
	var shuffleBase uint64
	if s.cfg.shuffle {
		codebooks = make([]*ShuffledCodebook, len(batch))
		// Reserve one seed per chunk up front: the chunk→seed mapping is
		// then deterministic under WithSeed no matter which chunk's
		// goroutine runs first.
		shuffleBase = s.shuffleSeedBlock(chunks)
	}
	err = matrix.ParallelFor(chunks, workers, func(ci int) error {
		lo := ci * capacity
		hi := min(lo+capacity, len(batch))
		q, err := s.EncryptQueryBatch(name, batch[lo:hi])
		if err != nil {
			return err
		}
		var seed uint64
		if s.cfg.shuffle {
			seed = shuffleBase + uint64(ci)*shuffleSeedStride
		}
		enc, _, err := s.classify(ctx, name, q, seed)
		if err != nil {
			return err
		}
		results, err := s.DecryptResultBatch(name, enc)
		if err != nil {
			return err
		}
		copy(out[lo:hi], results)
		if codebooks != nil {
			copy(codebooks[lo:hi], enc.Codebooks())
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, codebooks, nil
}

// ServiceStats is a snapshot of the serving counters.
type ServiceStats struct {
	// Requests counts Classify passes; Queries counts feature vectors
	// answered (Queries/Requests is the realized batch factor).
	Requests, Queries int64
	// Failures counts classifications that returned an error (including
	// cancellations).
	Failures int64
	// InFlight is the number of passes currently executing.
	InFlight int64
	// QueueWait is the cumulative time requests spent waiting for an
	// in-flight slot; zero without WithMaxInFlight.
	QueueWait time.Duration
	// Queued is the number of calls currently waiting for an in-flight
	// slot (the shed-queue depth).
	Queued int64
	// Shed counts calls rejected with *OverloadError because the
	// WithShedQueue bound was full; included in Failures.
	Shed int64
	// DeadlineRejects counts calls rejected with *DeadlineError because
	// their remaining budget could not cover a typical pass; included in
	// Failures.
	DeadlineRejects int64
	// PanicsRecovered counts panics recovered inside serving goroutines
	// and converted to *InternalError (DESIGN.md §15); the affected
	// requests are included in Failures.
	PanicsRecovered int64
	// Latency is the cumulative classification time (excluding queue
	// wait); Latency/Requests is the mean per-pass latency.
	Latency time.Duration

	// BatcherPasses counts coalesced passes fired by the dynamic
	// batcher (WithBatchWindow); they are also included in Requests.
	BatcherPasses int64
	// CoalescedQueries counts queries answered through the batcher;
	// CoalescedQueries/BatcherPasses is its realized batch factor.
	CoalescedQueries int64
	// BatchFill is the mean fill ratio of batcher passes: queries per
	// pass over the model's batch capacity (1.0 = every pass full).
	BatchFill float64
	// BatchWait is the cumulative time queries lingered in a forming
	// batch before their pass fired.
	BatchWait time.Duration

	// ModelLatency summarizes each registered model's per-pass
	// classification latency distribution, recorded into fixed
	// log-spaced buckets (internal/hist), so snapshots from different
	// times or nodes are directly comparable.
	ModelLatency map[string]LatencyStats
}

// LatencyStats is one model's latency distribution summary: the pass
// count and interpolated p50/p95/p99 over fixed log-spaced buckets.
type LatencyStats struct {
	Count         int64
	P50, P95, P99 time.Duration
}

// MeanLatency returns the mean per-pass classification latency.
func (st ServiceStats) MeanLatency() time.Duration {
	if st.Requests == 0 {
		return 0
	}
	return st.Latency / time.Duration(st.Requests)
}

// MeanQueueWait returns the mean per-pass queue wait.
func (st ServiceStats) MeanQueueWait() time.Duration {
	if st.Requests == 0 {
		return 0
	}
	return st.QueueWait / time.Duration(st.Requests)
}

// MeanBatchWait returns the mean per-query linger in the dynamic
// batcher.
func (st ServiceStats) MeanBatchWait() time.Duration {
	if st.CoalescedQueries == 0 {
		return 0
	}
	return st.BatchWait / time.Duration(st.CoalescedQueries)
}

// Stats snapshots the serving counters.
func (s *Service) Stats() ServiceStats {
	st := ServiceStats{
		Requests:         s.requests.Load(),
		Queries:          s.queries.Load(),
		Failures:         s.failures.Load(),
		InFlight:         s.inFlight.Load(),
		QueueWait:        time.Duration(s.queueNS.Load()),
		Queued:           s.queued.Load(),
		Shed:             s.shed.Load(),
		DeadlineRejects:  s.deadlineRejects.Load(),
		PanicsRecovered:  s.panicsRecovered.Load(),
		Latency:          time.Duration(s.latencyNS.Load()),
		BatcherPasses:    s.aggPasses.Load(),
		CoalescedQueries: s.aggQueries.Load(),
		BatchWait:        time.Duration(s.aggWaitNS.Load()),
	}
	if den := s.aggFillDen.Load(); den > 0 {
		st.BatchFill = float64(s.aggFillNum.Load()) / float64(den)
	}
	s.mu.RLock()
	if len(s.models) > 0 {
		st.ModelLatency = make(map[string]LatencyStats, len(s.models))
		for name, m := range s.models {
			snap := m.latency.Snapshot()
			st.ModelLatency[name] = LatencyStats{
				Count: snap.Count,
				P50:   snap.Quantile(0.50),
				P95:   snap.Quantile(0.95),
				P99:   snap.Quantile(0.99),
			}
		}
	}
	s.mu.RUnlock()
	return st
}
