// Package copse is a vectorized secure decision-forest inference system:
// a Go implementation of COPSE (Malik, Singhal, Gottfried, Kulkarni:
// "Vectorized Secure Evaluation of Decision Forests", PLDI 2021).
//
// COPSE evaluates an entire decision forest under fully homomorphic
// encryption as four packed (SIMD) stages — compare, reshuffle,
// level-process, accumulate — instead of a sequential tree walk. The
// model owner (Maurice) compiles and encrypts the forest; the data owner
// (Diane) encrypts feature vectors; an untrusted server (Sally) runs the
// inference without learning either.
//
// The serving flow — a Service stages one or more compiled models onto a
// shared backend and answers slot-packed query batches concurrently:
//
//	forest, _ := copse.ParseModel(r)                    // or copse.Train(...)
//	compiled, _ := copse.Compile(forest, copse.CompileOptions{Slots: 1024})
//	svc := copse.NewService(
//		copse.WithBackend(copse.BackendBGV),
//		copse.WithScenario(copse.ScenarioOffload),
//	)
//	_ = svc.Register("forest", compiled)
//	results, _ := svc.ClassifyBatch(ctx, "forest", [][]uint64{{3, 5}, {7, 1}})
//	fmt.Println(results[0].Plurality())
//
// The three-party view of the paper's Figure 2 remains available as a
// thin wrapper for single-model, per-party workflows:
//
//	sys, _ := copse.NewSystem(compiled, copse.SystemConfig{
//		Backend:  copse.BackendBGV,
//		Scenario: copse.ScenarioOffload,
//	})
//	query, _ := sys.Diane.EncryptQuery([]uint64{3, 5})
//	encrypted, _, _ := sys.Sally.Classify(query)
//	result, _ := sys.Diane.DecryptResult(encrypted)
//	fmt.Println(result.Plurality())
package copse

import (
	"context"
	"fmt"
	"io"

	"copse/internal/core"
	"copse/internal/he"
	"copse/internal/model"
)

// Model types and serialization, re-exported from the model package.
type (
	// Forest is a decision-forest model.
	Forest = model.Forest
	// Tree is a single decision tree.
	Tree = model.Tree
	// Node is a tree node.
	Node = model.Node
)

// ParseModel reads a forest in the COPSE text format.
func ParseModel(r io.Reader) (*Forest, error) { return model.Parse(r) }

// ParseModelString parses a forest from a string.
func ParseModelString(s string) (*Forest, error) { return model.ParseString(s) }

// FormatModel writes a forest in the COPSE text format.
func FormatModel(w io.Writer, f *Forest) error { return model.Format(w, f) }

// ExampleForest returns the paper's Figure 1 running example.
func ExampleForest() *Forest { return model.Figure1() }

// Compiler types, re-exported from the core package.
type (
	// CompileOptions controls staging.
	CompileOptions = core.Options
	// Compiled is a staged model.
	Compiled = core.Compiled
	// Meta holds a compiled model's structural parameters.
	Meta = core.Meta
	// Query is a prepared (usually encrypted) feature vector.
	Query = core.Query
	// Result is a decoded classification.
	Result = core.Result
	// Trace is the per-stage timing breakdown of one inference.
	Trace = core.Trace
	// Scenario is a party configuration (paper §7.1).
	Scenario = core.Scenario
	// Party is a notional protocol party.
	Party = core.Party
	// Leakage describes what a party learns in a scenario.
	Leakage = core.Leakage
)

// Party configurations (see paper §7.1 and Tables 3–4).
const (
	// ScenarioOffload: model and data owned by the same party, compute
	// offloaded to an untrusted server (model and features encrypted).
	ScenarioOffload = core.ScenarioOffload
	// ScenarioServerModel: the server owns the model in plaintext;
	// clients send encrypted features.
	ScenarioServerModel = core.ScenarioServerModel
	// ScenarioClientEval: the client evaluates an encrypted model on
	// its own plaintext features.
	ScenarioClientEval = core.ScenarioClientEval
	// ScenarioThreeParty and the collusion variants model the
	// three-physical-party analysis of Table 4.
	ScenarioThreeParty = core.ScenarioThreeParty
	ScenarioColludeSM  = core.ScenarioColludeSM
	ScenarioColludeSD  = core.ScenarioColludeSD
)

// Notional parties.
const (
	PartyServer     = core.PartyServer
	PartyModelOwner = core.PartyModelOwner
	PartyDataOwner  = core.PartyDataOwner
)

// Revealed returns the leakage-table entry for a scenario and party.
func Revealed(s Scenario, p Party) Leakage { return core.Revealed(s, p) }

// Compile stages a forest into its vectorizable form: the padded
// threshold vector, reshuffling matrix, level matrices and masks of
// §4.2, plus the rotation-key set and parameter recommendation.
func Compile(f *Forest, opts CompileOptions) (*Compiled, error) {
	return core.Compile(f, opts)
}

// WriteArtifact serializes a compiled model.
func WriteArtifact(w io.Writer, c *Compiled) error { return core.WriteArtifact(w, c) }

// ReadArtifact deserializes a compiled model.
func ReadArtifact(r io.Reader) (*Compiled, error) { return core.ReadArtifact(r) }

// Forest sharding, re-exported from the core package (DESIGN.md §12).
type (
	// ShardInfo locates one shard inside its parent forest.
	ShardInfo = core.ShardInfo
	// ShardManifest is the merge manifest of a sharded forest: the
	// shared key contract (chain length, rotation-step union) plus the
	// global Meta and per-shard ranges a gateway merges through.
	ShardManifest = core.ShardManifest
)

// ShardForest splits a compiled forest into self-contained per-shard
// artifacts (tree-wise, balanced by branch count) plus the merge
// manifest. Each shard keeps the parent's packing layout, so one
// encrypted query batch serves every shard and the per-shard results
// occupy disjoint leaf-slot supports — a gateway merges them with
// plain ciphertext additions and the sum is bit-identical to the
// unsharded classification.
func ShardForest(c *Compiled, shards int) ([]*Compiled, *ShardManifest, error) {
	return core.ShardForest(c, shards)
}

// WriteManifest serializes a shard manifest (JSON).
func WriteManifest(w io.Writer, m *ShardManifest) error { return m.WriteManifest(w) }

// ReadManifest deserializes a shard manifest.
func ReadManifest(r io.Reader) (*ShardManifest, error) { return core.ReadManifest(r) }

// GenerateProgram emits a standalone Go program specialized to the
// compiled model — the staging-compiler output of the paper's §5
// (there it is C++ linking the runtime; here it is Go driving this
// package's API). For an unrolled kernel package that plugs into an
// existing binary instead, see GenerateKernel.
func GenerateProgram(w io.Writer, c *Compiled) error { return core.GenerateProgram(w, c) }

// KernelCtx is the execution context generated specialized kernels run
// against (DESIGN.md §13). Generated packages reference it through this
// alias, since internal/core is unimportable from outside the module.
type KernelCtx = core.KernelCtx

// KernelFunc is the signature of a generated specialized kernel.
type KernelFunc = core.KernelFunc

// GenerateKernel emits the compiled model's specialized op programs as
// an unrolled Go kernel package (`copse-compile -gen`): straight-line
// kernels for the encrypted- and plaintext-model modes, registered
// against the artifact hash in an init(). Linking the package into a
// binary that registers the same artifact makes Classify dispatch to
// the generated kernel; outputs are bit-identical to the interpreter.
func GenerateKernel(w io.Writer, c *Compiled, pkg string) error {
	return core.GenerateKernel(w, c, pkg)
}

// RegisterKernel installs a generated kernel for (artifact hash,
// model-encryption mode); generated packages call it from init().
func RegisterKernel(hash string, encrypted bool, numOps, numRegs int, fn KernelFunc) {
	core.RegisterKernel(hash, encrypted, numOps, numRegs, fn)
}

// ArtifactHash returns the hex SHA-256 of the artifact's serialized
// bytes — the key a generated kernel registers under.
func ArtifactHash(c *Compiled) (string, error) { return core.ArtifactHash(c) }

// KernelRuns reports how many times a generated kernel has executed in
// this process — a witness that registry dispatch actually engaged
// (outputs alone cannot tell, being bit-identical by design).
func KernelRuns() int64 { return core.KernelRuns() }

// BackendKind selects the homomorphic backend.
type BackendKind int

const (
	// BackendBGV runs on real RLWE/BGV ciphertexts.
	BackendBGV BackendKind = iota
	// BackendClear runs the identical dataflow on a noise-free
	// reference backend: exact semantics, no cryptography. Useful for
	// testing and for algorithmic scaling studies.
	BackendClear
)

// SecurityPreset selects the BGV lattice dimension.
type SecurityPreset int

const (
	// SecurityTest: N=2048 (1024 slots). Functionally faithful;
	// dimension far below 128-bit security. Fast.
	SecurityTest SecurityPreset = iota
	// SecurityDemo: N=4096 (2048 slots), fits the largest models.
	SecurityDemo
	// Security128: N=32768, matching the paper's security parameter at
	// COPSE's depths. Very slow in pure Go.
	Security128
)

// ParseBackend maps a CLI/config string ("bgv", "clear") to a backend
// kind.
func ParseBackend(s string) (BackendKind, error) {
	switch s {
	case "bgv":
		return BackendBGV, nil
	case "clear":
		return BackendClear, nil
	}
	return 0, fmt.Errorf("copse: unknown backend %q (want bgv or clear)", s)
}

// ParseScenario maps a CLI/config string ("offload", "servermodel",
// "clienteval", "threeparty") to a party configuration.
func ParseScenario(s string) (Scenario, error) {
	switch s {
	case "offload":
		return ScenarioOffload, nil
	case "servermodel":
		return ScenarioServerModel, nil
	case "clienteval":
		return ScenarioClientEval, nil
	case "threeparty":
		return ScenarioThreeParty, nil
	}
	return 0, fmt.Errorf("copse: unknown scenario %q (want offload, servermodel, clienteval or threeparty)", s)
}

// SecurityForSlots returns the BGV preset whose packing width matches a
// model staged for the given slot count — the lookup every CLI that
// loads an artifact needs before building a service.
func SecurityForSlots(slots int) (SecurityPreset, error) {
	switch slots {
	case 1024:
		return SecurityTest, nil
	case 2048:
		return SecurityDemo, nil
	case 16384:
		return Security128, nil
	}
	return 0, fmt.Errorf("copse: no BGV preset with %d slots; recompile with Slots 1024, 2048 or 16384", slots)
}

// SystemConfig configures NewSystem.
type SystemConfig struct {
	Backend  BackendKind
	Scenario Scenario
	Security SecurityPreset
	// Workers is the intra-query parallelism (the paper's
	// multithreaded mode); 0 or 1 means single-threaded.
	Workers int
	// IntraOpWorkers is the ring-layer limb parallelism of the BGV
	// backend (see WithIntraOpWorkers): 0 derives it from the shared
	// core budget, 1 forces serial, n ≥ 2 fans every op's RNS limbs
	// across n workers.
	IntraOpWorkers int
	// DisableVectorKernels pins the BGV ring layer to the portable
	// scalar kernels even on hosts with a SIMD backend (see
	// WithVectorKernels). Results are bit-identical either way; this is
	// the ablation knob behind copse-bench -novec (DESIGN.md §14).
	DisableVectorKernels bool
	// ReuseRotations enables the naive-kernel rotation-reuse ablation
	// (DESIGN.md §6); it has no effect on BSGS-staged models, which
	// always share the baby-step rotations across levels.
	ReuseRotations bool
	// DisableHoisting turns off hoisted key switching (the shared digit
	// decomposition behind batched rotations). Hoisting is on by
	// default; this is the ablation knob (DESIGN.md §6).
	DisableHoisting bool
	// DisableLevelPlan turns off static level scheduling, leaving noise
	// management fully reactive and the BGV chain at the reactive
	// recommendation. Scheduling is on by default; this is the ablation
	// knob (DESIGN.md §8).
	DisableLevelPlan bool
	// Shuffle enables result shuffling (paper §7.2.2) on every
	// classification pass: per-query permuted results decoded through
	// per-query codebooks (see WithShuffle). BGV models must be compiled
	// with CompileOptions.PlanShuffle.
	Shuffle bool
	// MeasureNoise records decrypt-side noise-budget margins at every
	// stage boundary in each Trace (see WithNoiseMeasurement); a
	// benchmarking knob.
	MeasureNoise bool
	// DisableSpecialization runs the generic interpreter instead of the
	// model-specialized op program — the ablation baseline (see
	// WithSpecialization). Outputs are bit-identical either way.
	DisableSpecialization bool
	// Batch configures the dynamic batcher (see WithBatchPolicy): a
	// non-zero Window lets concurrent Classify calls coalesce into
	// shared slot-packed passes.
	Batch BatchPolicy
	// Levels overrides the compiler's recommended BGV chain length.
	Levels int
	// Seed, when non-zero, makes key generation and encryption
	// deterministic (tests and reproducible experiments only). With
	// Shuffle it also makes every shuffle permutation predictable from
	// the seed — see WithSeed.
	Seed uint64
}

// System wires the three parties around a shared backend, mirroring the
// workflow of Figure 2. It is a thin single-model view over Service —
// the party split (Maurice/Diane/Sally) names who may call what, while
// the service underneath does the staging, batching and bookkeeping.
type System struct {
	Maurice *ModelOwner
	Diane   *DataOwner
	Sally   *Server

	svc *Service
}

// systemModel is the registry name a System's single model serves under.
const systemModel = "default"

// ModelOwner (Maurice) holds the compiled model and knows its private
// structure.
type ModelOwner struct {
	Compiled *Compiled
}

// DataOwner (Diane) prepares queries and decrypts results.
type DataOwner struct {
	sys *System
}

// Server (Sally) executes inference over operands it cannot read.
type Server struct {
	sys *System
}

// NewSystem instantiates the parties for a compiled model: it builds a
// single-model Service per the config (generating keys for exactly the
// rotations the compiler emitted, encrypting or encoding the model per
// the scenario) and returns the wired parties.
func NewSystem(c *Compiled, cfg SystemConfig) (*System, error) {
	svc := NewService(
		WithBackend(cfg.Backend),
		WithScenario(cfg.Scenario),
		WithSecurity(cfg.Security),
		WithWorkers(cfg.Workers),
		WithIntraOpWorkers(cfg.IntraOpWorkers),
		WithVectorKernels(!cfg.DisableVectorKernels),
		WithLevels(cfg.Levels),
		WithSeed(cfg.Seed),
		WithReuseRotations(cfg.ReuseRotations),
		WithHoisting(!cfg.DisableHoisting),
		WithLevelPlan(!cfg.DisableLevelPlan),
		WithShuffle(cfg.Shuffle),
		WithNoiseMeasurement(cfg.MeasureNoise),
		WithSpecialization(!cfg.DisableSpecialization),
		WithBatchPolicy(cfg.Batch),
	)
	if err := svc.Register(systemModel, c); err != nil {
		return nil, err
	}
	sys := &System{svc: svc}
	sys.Maurice = &ModelOwner{Compiled: c}
	sys.Diane = &DataOwner{sys: sys}
	sys.Sally = &Server{sys: sys}
	return sys, nil
}

// Service exposes the serving layer a System wraps, for callers that
// started with the three-party API and want the batched/concurrent
// surface (registry, stats, context-aware classify).
func (s *System) Service() *Service { return s.svc }

// scenarioEncryption maps a scenario to (model encrypted, features
// encrypted).
func scenarioEncryption(s Scenario) (encModel, encFeats bool, err error) {
	switch s {
	case ScenarioOffload, ScenarioThreeParty, ScenarioColludeSM, ScenarioColludeSD:
		return true, true, nil
	case ScenarioServerModel:
		return false, true, nil
	case ScenarioClientEval:
		return true, false, nil
	}
	return false, false, fmt.Errorf("copse: unknown scenario %d", s)
}

// Backend exposes the underlying homomorphic backend (for op counting
// and diagnostics).
func (s *System) Backend() he.Backend { return s.svc.Backend() }

// EncryptQuery prepares a quantized feature vector per the scenario:
// replicated to the model's maximum multiplicity K, padded,
// bit-transposed, and encrypted (left plaintext in ScenarioClientEval).
func (d *DataOwner) EncryptQuery(features []uint64) (*Query, error) {
	return d.sys.svc.EncryptQuery(systemModel, features)
}

// EncryptQueryBatch slot-packs up to Meta.BatchCapacity feature vectors
// into one encrypted query set; one Classify call answers all of them.
func (d *DataOwner) EncryptQueryBatch(batch [][]uint64) (*Query, error) {
	return d.sys.svc.EncryptQueryBatch(systemModel, batch)
}

// ShuffledCodebook is the public decoding table of one shuffled query:
// the slot→label map the data owner tallies votes through (paper
// §7.2.2). Returned per packed query by the shuffled serving path.
type ShuffledCodebook = core.ShuffledCodebook

// EncryptedResult is Sally's output: the encrypted N-hot leaf
// bitvector, one per packed query. Under WithShuffle each query's leaf
// slots are permuted and the matching per-query codebooks ride along.
// A request larger than the model's batch capacity classifies as a
// chain of passes whose results ride in one EncryptedResult, decoded
// in packing order by DecryptResultBatch.
type EncryptedResult struct {
	segs []resultSeg
}

// resultSeg is one homomorphic pass's worth of results.
type resultSeg struct {
	op        he.Operand
	batch     int
	codebooks []*core.ShuffledCodebook // nil unless the pass was shuffled
}

// Codebooks returns the per-query shuffled codebooks of a shuffled
// classification, in packing order across every pass (nil for
// unshuffled passes). Together with the decrypted slots these are all
// the data owner needs to tally votes — and all they can learn: leaf
// order and tree boundaries stay hidden.
func (r *EncryptedResult) Codebooks() []*ShuffledCodebook {
	if len(r.segs) == 1 {
		return r.segs[0].codebooks
	}
	var out []*ShuffledCodebook
	for _, seg := range r.segs {
		if seg.codebooks == nil {
			return nil
		}
		out = append(out, seg.codebooks...)
	}
	return out
}

// Operand returns the packed result carrier of a single-pass
// classification together with its batch count — the hook the cluster
// data plane uses to put a worker's shard result on the wire. A
// chained multi-pass result has no single carrier and returns an
// error (cluster requests are capped at one pass).
func (r *EncryptedResult) Operand() (he.Operand, int, error) {
	if len(r.segs) != 1 {
		return he.Operand{}, 0, fmt.Errorf("copse: result spans %d passes, no single operand", len(r.segs))
	}
	return r.segs[0].op, r.segs[0].batch, nil
}

// Classify runs Algorithm 1 on an encrypted query (or slot-packed
// batch; one pass classifies every packed query).
func (s *Server) Classify(q *Query) (*EncryptedResult, *Trace, error) {
	return s.sys.svc.Classify(context.Background(), systemModel, q)
}

// ClassifyCtx is Classify with cancellation between pipeline stages.
func (s *Server) ClassifyCtx(ctx context.Context, q *Query) (*EncryptedResult, *Trace, error) {
	return s.sys.svc.Classify(ctx, systemModel, q)
}

// ServerView reports what the server can infer from artifact shapes
// alone (the executable form of Table 3's leakage).
func (s *Server) ServerView() core.ServerView {
	view, _ := s.sys.svc.ServerView(systemModel)
	return view
}

// DecryptResult decrypts and decodes a classification (batch entry 0).
func (d *DataOwner) DecryptResult(r *EncryptedResult) (*Result, error) {
	return d.sys.svc.DecryptResult(systemModel, r)
}

// DecryptResultBatch decrypts one classification pass and decodes every
// packed query's result, in packing order.
func (d *DataOwner) DecryptResultBatch(r *EncryptedResult) ([]*Result, error) {
	return d.sys.svc.DecryptResultBatch(systemModel, r)
}

// Meta exposes the compiled model's public parameters.
func (s *Server) Meta() *Meta {
	m, err := s.sys.svc.Meta(systemModel)
	if err != nil {
		return nil
	}
	return m
}
