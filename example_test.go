package copse_test

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"copse"
)

// ExampleService shows the serving API: one Service, one shared backend,
// and a slot-packed batch answered in a single homomorphic pass. The
// batch's first entry is the paper's Figure 1 walkthrough input.
func ExampleService() {
	compiled, err := copse.Compile(copse.ExampleForest(), copse.CompileOptions{Slots: 1024})
	if err != nil {
		log.Fatal(err)
	}
	svc := copse.NewService(copse.WithBackend(copse.BackendClear))
	if err := svc.Register("figure1", compiled); err != nil {
		log.Fatal(err)
	}
	batch := [][]uint64{{0, 5}, {7, 0}}
	results, err := svc.ClassifyBatch(context.Background(), "figure1", batch)
	if err != nil {
		log.Fatal(err)
	}
	for i, res := range results {
		fmt.Printf("Classify(%d, %d) = L%d\n", batch[i][0], batch[i][1], res.PerTree[0])
	}
	st := svc.Stats()
	fmt.Printf("%d queries, %d homomorphic pass(es)\n", st.Queries, st.Requests)
	// Output:
	// Classify(0, 5) = L4
	// Classify(7, 0) = L3
	// 2 queries, 1 homomorphic pass(es)
}

// ExampleService_shuffled shows shuffled batched serving (paper
// §7.2.2 + DESIGN.md §10): WithShuffle permutes every packed query's
// result slots in one block-diagonal pass, and the per-query codebooks
// decode vote counts — per-tree labels stay hidden from the data owner.
func ExampleService_shuffled() {
	// PlanShuffle reserves the level headroom the shuffle needs on the
	// BGV backend; the exact clear backend accepts any schedule.
	compiled, err := copse.Compile(copse.ExampleForest(), copse.CompileOptions{Slots: 1024, PlanShuffle: true})
	if err != nil {
		log.Fatal(err)
	}
	svc := copse.NewService(
		copse.WithBackend(copse.BackendClear),
		copse.WithShuffle(true),
		copse.WithSeed(7), // deterministic permutations, for the example only
	)
	if err := svc.Register("figure1", compiled); err != nil {
		log.Fatal(err)
	}
	batch := [][]uint64{{0, 5}, {7, 0}}
	results, codebooks, err := svc.ClassifyBatchShuffled(context.Background(), "figure1", batch)
	if err != nil {
		log.Fatal(err)
	}
	for i, res := range results {
		fmt.Printf("Classify(%d, %d) votes %v → L%d (codebook over %d shuffled slots)\n",
			batch[i][0], batch[i][1], res.Votes, res.Plurality(), len(codebooks[i].Slots))
	}
	// Output:
	// Classify(0, 5) votes [0 0 0 0 1 0] → L4 (codebook over 6 shuffled slots)
	// Classify(7, 0) votes [0 0 0 1 0 0] → L3 (codebook over 6 shuffled slots)
}

// ExampleService_dynamicBatching shows the dynamic batcher (DESIGN.md
// §11): four uncoordinated goroutines — think independent HTTP
// handlers — each submit one query, and the aggregator coalesces them
// into a single slot-packed homomorphic pass. MinFill pins the pass
// boundary at exactly the fleet size so the example is deterministic;
// production configs usually set only WithBatchWindow and let passes
// fire at capacity or the linger deadline.
func ExampleService_dynamicBatching() {
	compiled, err := copse.Compile(copse.ExampleForest(), copse.CompileOptions{Slots: 1024})
	if err != nil {
		log.Fatal(err)
	}
	svc := copse.NewService(
		copse.WithBackend(copse.BackendClear),
		copse.WithBatchPolicy(copse.BatchPolicy{
			Window:  50 * time.Millisecond, // linger cap for a lone query
			MinFill: 4,                     // fire as soon as the fleet is in
		}),
	)
	if err := svc.Register("figure1", compiled); err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	queries := [][]uint64{{0, 5}, {7, 0}, {3, 3}, {6, 6}}
	answers := make([]*copse.Result, len(queries))
	var wg sync.WaitGroup
	for i, feats := range queries {
		wg.Add(1)
		go func(i int, feats []uint64) {
			defer wg.Done()
			results, err := svc.ClassifyBatch(context.Background(), "figure1", [][]uint64{feats})
			if err != nil {
				log.Fatal(err)
			}
			answers[i] = results[0]
		}(i, feats)
	}
	wg.Wait()
	for i, res := range answers {
		fmt.Printf("Classify(%d, %d) = L%d\n", queries[i][0], queries[i][1], res.PerTree[0])
	}
	st := svc.Stats()
	fmt.Printf("%d callers coalesced into %d homomorphic pass(es)\n", st.CoalescedQueries, st.BatcherPasses)
	// Output:
	// Classify(0, 5) = L4
	// Classify(7, 0) = L3
	// Classify(3, 3) = L2
	// Classify(6, 6) = L4
	// 4 callers coalesced into 1 homomorphic pass(es)
}

// Example runs the paper's Figure 1 walkthrough on the exact reference
// backend: the input (x, y) = (0, 5) classifies as L4.
func Example() {
	forest := copse.ExampleForest()
	compiled, err := copse.Compile(forest, copse.CompileOptions{Slots: 1024})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := copse.NewSystem(compiled, copse.SystemConfig{
		Backend:  copse.BackendClear,
		Scenario: copse.ScenarioOffload,
	})
	if err != nil {
		log.Fatal(err)
	}
	query, err := sys.Diane.EncryptQuery([]uint64{0, 5})
	if err != nil {
		log.Fatal(err)
	}
	encrypted, _, err := sys.Sally.Classify(query)
	if err != nil {
		log.Fatal(err)
	}
	result, err := sys.Diane.DecryptResult(encrypted)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(forest.Labels[result.PerTree[0]])
	// Output: L4
}

// ExampleRevealed shows the executable leakage model of the paper's
// Table 3: in the offloading scenario the server learns the quantized
// branching, branch count and depth, and nothing else.
func ExampleRevealed() {
	l := copse.Revealed(copse.ScenarioOffload, copse.PartyServer)
	fmt.Println(l.Q, l.B, l.D, l.K, l.Everything)
	// Output: true true true false false
}

// ExampleCompile shows the structural parameters the staging compiler
// derives from the Figure 1 tree — the same K=3, q=6, b=5 the paper
// walks through in §4.1.1.
func ExampleCompile() {
	compiled, err := copse.Compile(copse.ExampleForest(), copse.CompileOptions{Slots: 1024})
	if err != nil {
		log.Fatal(err)
	}
	m := compiled.Meta
	fmt.Printf("K=%d q=%d b=%d d=%d\n", m.K, m.Q, m.B, m.D)
	// Output: K=3 q=6 b=5 d=3
}
