package copse_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"testing"

	"copse"
	"copse/internal/core"
	"copse/internal/synth"
)

// trainedModel compiles a small synthetic forest for service tests.
func trainedModel(t *testing.T, seed uint64, slots int) (*copse.Forest, *copse.Compiled) {
	t.Helper()
	f, err := synth.Generate(synth.ForestSpec{
		NumFeatures:     3,
		NumLabels:       3,
		Precision:       4,
		MaxDepth:        3,
		BranchesPerTree: []int{5, 4},
		Seed:            seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := copse.Compile(f, copse.CompileOptions{Slots: slots})
	if err != nil {
		t.Fatal(err)
	}
	return f, c
}

// TestServiceRegistryMultiModel: two models served off one backend and
// key set, each classifying batches correctly.
func TestServiceRegistryMultiModel(t *testing.T) {
	f1, c1 := trainedModel(t, 41, 256)
	f2, c2 := trainedModel(t, 42, 256)
	svc := copse.NewService(copse.WithBackend(copse.BackendClear), copse.WithWorkers(2))
	if svc.Backend() != nil {
		t.Error("backend exists before first Register")
	}
	if err := svc.Register("alpha", c1); err != nil {
		t.Fatal(err)
	}
	if err := svc.Register("beta", c2); err != nil {
		t.Fatal(err)
	}
	if err := svc.Register("alpha", c1); err == nil {
		t.Error("duplicate registration accepted")
	}
	if got := svc.Models(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Errorf("Models() = %v", got)
	}
	if _, err := svc.ClassifyBatch(context.Background(), "missing", [][]uint64{{1, 2, 3}}); err == nil {
		t.Error("unknown model accepted")
	}

	rng := rand.New(rand.NewPCG(9, 9))
	for name, pair := range map[string]struct {
		f *copse.Forest
		c *copse.Compiled
	}{"alpha": {f1, c1}, "beta": {f2, c2}} {
		capacity, err := svc.BatchCapacity(name)
		if err != nil {
			t.Fatal(err)
		}
		if capacity != pair.c.Meta.BatchCapacity() {
			t.Errorf("%s: capacity %d, want %d", name, capacity, pair.c.Meta.BatchCapacity())
		}
		// Oversized batches split into multiple passes transparently.
		batch := make([][]uint64, capacity+3)
		for i := range batch {
			batch[i] = make([]uint64, pair.f.NumFeatures)
			for j := range batch[i] {
				batch[i][j] = rng.Uint64N(1 << uint(pair.f.Precision))
			}
		}
		results, err := svc.ClassifyBatch(context.Background(), name, batch)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(results) != len(batch) {
			t.Fatalf("%s: %d results for %d queries", name, len(results), len(batch))
		}
		for i, feats := range batch {
			want := pair.f.Classify(feats)
			for ti, lbl := range results[i].PerTree {
				if lbl != want[ti] {
					t.Errorf("%s query %d tree %d: L%d, want L%d", name, i, ti, lbl, want[ti])
				}
			}
		}
	}
	st := svc.Stats()
	if st.Requests < 4 { // ≥ 2 passes per model
		t.Errorf("stats recorded %d requests", st.Requests)
	}
	if st.Queries < st.Requests {
		t.Errorf("stats: %d queries < %d requests", st.Queries, st.Requests)
	}
}

// TestServiceSlotMismatch: a later model staged for a different slot
// count is rejected.
func TestServiceSlotMismatch(t *testing.T) {
	_, c1 := trainedModel(t, 41, 256)
	_, c2 := trainedModel(t, 42, 512)
	svc := copse.NewService(copse.WithBackend(copse.BackendClear))
	if err := svc.Register("a", c1); err != nil {
		t.Fatal(err)
	}
	if err := svc.Register("b", c2); err == nil {
		t.Error("slot mismatch accepted")
	}
}

// TestServiceContextCancel: a cancelled context stops a classification
// between stages and while queued.
func TestServiceContextCancel(t *testing.T) {
	_, c := trainedModel(t, 43, 256)
	svc := copse.NewService(copse.WithBackend(copse.BackendClear))
	if err := svc.Register("m", c); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.ClassifyBatch(ctx, "m", [][]uint64{{1, 2, 3}}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled classify returned %v", err)
	}
	if st := svc.Stats(); st.Failures == 0 {
		t.Error("cancellation not counted as failure")
	}
}

// TestServiceBatchCapacityError: the service boundary splits oversized
// batches into a chain of passes transparently; the typed error stays
// at the low-level PrepareQueryBatch API.
func TestServiceBatchCapacityError(t *testing.T) {
	f, c := trainedModel(t, 44, 256)
	svc := copse.NewService(copse.WithBackend(copse.BackendClear))
	if err := svc.Register("m", c); err != nil {
		t.Fatal(err)
	}
	capacity, err := svc.BatchCapacity("m")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(44, 44))
	over := make([][]uint64, 2*capacity+1) // three passes
	for i := range over {
		over[i] = []uint64{rng.Uint64N(16), rng.Uint64N(16), rng.Uint64N(16)}
	}

	// The low-level core API keeps its one-pass contract.
	_, err = core.PrepareQueryBatch(svc.Backend(), &c.Meta, over, false)
	var bce *core.BatchCapacityError
	if !errors.As(err, &bce) {
		t.Errorf("core.PrepareQueryBatch: %v, want *core.BatchCapacityError", err)
	}

	// The service chains the overflow and answers every query.
	q, err := svc.EncryptQueryBatch("m", over)
	if err != nil {
		t.Fatalf("oversized EncryptQueryBatch: %v", err)
	}
	enc, _, err := svc.Classify(context.Background(), "m", q)
	if err != nil {
		t.Fatal(err)
	}
	results, err := svc.DecryptResultBatch("m", enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(over) {
		t.Fatalf("%d results for %d queries", len(results), len(over))
	}
	for i, feats := range over {
		want := f.Classify(feats)
		for ti, lbl := range results[i].PerTree {
			if lbl != want[ti] {
				t.Errorf("query %d tree %d: L%d, want L%d", i, ti, lbl, want[ti])
			}
		}
	}
}

// TestServiceQueryModelMismatch: a query packed for one model is
// rejected when classified against a model with a different layout.
func TestServiceQueryModelMismatch(t *testing.T) {
	_, c1 := trainedModel(t, 46, 256)
	f2, err := synth.Generate(synth.ForestSpec{
		NumFeatures:     5, // wider QPad than c1's
		NumLabels:       3,
		Precision:       4,
		MaxDepth:        3,
		BranchesPerTree: []int{7, 6, 5},
		Seed:            47,
	})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := copse.Compile(f2, copse.CompileOptions{Slots: 256})
	if err != nil {
		t.Fatal(err)
	}
	if c1.Meta.BatchBlock() == c2.Meta.BatchBlock() && c1.Meta.QPad == c2.Meta.QPad {
		t.Fatal("test models share a layout; pick different shapes")
	}
	svc := copse.NewService(copse.WithBackend(copse.BackendClear))
	if err := svc.Register("a", c1); err != nil {
		t.Fatal(err)
	}
	if err := svc.Register("b", c2); err != nil {
		t.Fatal(err)
	}
	q, err := svc.EncryptQuery("a", []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Classify(context.Background(), "b", q); err == nil {
		t.Error("query packed for model a accepted by model b")
	}
}

// concurrentStress hammers one service from many goroutines, mixing
// single queries and full-capacity batches, and checks every result
// against the plaintext forest. Run with -race to verify the
// concurrency contract of the backends.
func concurrentStress(t *testing.T, f *copse.Forest, svc *copse.Service, goroutines, queriesEach int) {
	t.Helper()
	capacity, err := svc.BatchCapacity("m")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 77))
			for i := 0; i < queriesEach; i++ {
				n := 1
				if i%2 == 1 {
					n = capacity
				}
				batch := make([][]uint64, n)
				for k := range batch {
					batch[k] = make([]uint64, f.NumFeatures)
					for j := range batch[k] {
						batch[k][j] = rng.Uint64N(1 << uint(f.Precision))
					}
				}
				results, err := svc.ClassifyBatch(context.Background(), "m", batch)
				if err != nil {
					errc <- fmt.Errorf("goroutine %d: %w", g, err)
					return
				}
				for k, feats := range batch {
					if got, want := results[k].PerTree[0], f.Classify(feats)[0]; got != want {
						errc <- fmt.Errorf("goroutine %d query %v: L%d, want L%d", g, feats, got, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestServiceConcurrentClassifyClear is the N-goroutines × M-queries
// stress on the exact backend, with an in-flight cap so the queue path
// is exercised too.
func TestServiceConcurrentClassifyClear(t *testing.T) {
	f, c := trainedModel(t, 45, 256)
	svc := copse.NewService(
		copse.WithBackend(copse.BackendClear),
		copse.WithWorkers(2),
		copse.WithMaxInFlight(4),
	)
	if err := svc.Register("m", c); err != nil {
		t.Fatal(err)
	}
	concurrentStress(t, f, svc, 8, 6)
	st := svc.Stats()
	if st.Requests != 8*6 {
		t.Errorf("stats recorded %d requests, want %d", st.Requests, 8*6)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight %d after drain", st.InFlight)
	}
	if st.MeanLatency() <= 0 {
		t.Error("no latency recorded")
	}
}

// TestServiceConcurrentClassifyBGV is the same stress on real BGV
// ciphertexts: concurrent Classify over one shared evaluator and key
// set must be race-free and correct.
func TestServiceConcurrentClassifyBGV(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent BGV stress is slow")
	}
	forest := copse.ExampleForest()
	c, err := copse.Compile(forest, copse.CompileOptions{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	svc := copse.NewService(
		copse.WithBackend(copse.BackendBGV),
		copse.WithSecurity(copse.SecurityTest),
		copse.WithWorkers(2),
		copse.WithSeed(11),
	)
	if err := svc.Register("m", c); err != nil {
		t.Fatal(err)
	}
	concurrentStress(t, forest, svc, 4, 2)
}

// TestServiceConcurrentClassifyIntraOp layers both parallelism levels:
// concurrent Classify goroutines (Service workers) over a backend whose
// ring context fans every op's limbs across an intra-op worker pool.
// The pool is explicitly oversubscribed relative to the host so the
// sharded dispatch, the per-limb closures and the pooled scratch rows
// are all exercised under -race; results must still match the
// plaintext walk on both backends (the clear backend ignores the
// option).
func TestServiceConcurrentClassifyIntraOp(t *testing.T) {
	forest := copse.ExampleForest()
	c, err := copse.Compile(forest, copse.CompileOptions{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []copse.BackendKind{copse.BackendClear, copse.BackendBGV} {
		if backend == copse.BackendBGV && testing.Short() {
			continue
		}
		svc := copse.NewService(
			copse.WithBackend(backend),
			copse.WithSecurity(copse.SecurityTest),
			copse.WithWorkers(2),
			copse.WithIntraOpWorkers(3),
			copse.WithSeed(23),
		)
		if err := svc.Register("m", c); err != nil {
			t.Fatal(err)
		}
		concurrentStress(t, forest, svc, 3, 2)
		if err := svc.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}
}

// TestServiceShuffledServing: the WithShuffle path end to end on the
// clear backend — per-query codebooks, vote counts matching the
// plaintext walk, per-tree labels hidden, fresh permutations per pass.
func TestServiceShuffledServing(t *testing.T) {
	f, c := trainedModel(t, 47, 256)
	svc := copse.NewService(
		copse.WithBackend(copse.BackendClear),
		copse.WithShuffle(true),
		copse.WithSeed(9),
	)
	if err := svc.Register("m", c); err != nil {
		t.Fatal(err)
	}
	capacity := c.Meta.BatchCapacity()
	if capacity < 2 {
		t.Fatalf("capacity %d, want ≥ 2", capacity)
	}
	rng := rand.New(rand.NewPCG(5, 3))
	batch := make([][]uint64, capacity+1) // force two chunks
	for i := range batch {
		batch[i] = make([]uint64, f.NumFeatures)
		for j := range batch[i] {
			batch[i][j] = rng.Uint64N(1 << uint(f.Precision))
		}
	}
	results, codebooks, err := svc.ClassifyBatchShuffled(context.Background(), "m", batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(batch) || len(codebooks) != len(batch) {
		t.Fatalf("%d results, %d codebooks for %d queries", len(results), len(codebooks), len(batch))
	}
	for i, feats := range batch {
		wantVotes := make([]int, len(f.Labels))
		for _, lbl := range f.Classify(feats) {
			wantVotes[lbl]++
		}
		for lbl, v := range results[i].Votes {
			if v != wantVotes[lbl] {
				t.Errorf("query %d: votes %v, want %v", i, results[i].Votes, wantVotes)
				break
			}
		}
		if results[i].PerTree != nil {
			t.Errorf("query %d: shuffled result exposes per-tree labels %v", i, results[i].PerTree)
		}
		if codebooks[i] == nil || len(codebooks[i].Slots) == 0 {
			t.Errorf("query %d: missing codebook", i)
		}
	}
	// ClassifyBatch (codebooks hidden) must serve the same votes.
	plain, err := svc.ClassifyBatch(context.Background(), "m", batch[:2])
	if err != nil {
		t.Fatal(err)
	}
	if plain[0].PerTree != nil {
		t.Error("shuffled service leaked per-tree labels through ClassifyBatch")
	}
	// Distinct passes draw distinct permutations: classify the same query
	// twice and compare codebooks.
	_, cb1, err := svc.ClassifyBatchShuffled(context.Background(), "m", batch[:1])
	if err != nil {
		t.Fatal(err)
	}
	_, cb2, err := svc.ClassifyBatchShuffled(context.Background(), "m", batch[:1])
	if err != nil {
		t.Fatal(err)
	}
	same := len(cb1[0].Slots) == len(cb2[0].Slots)
	if same {
		for i := range cb1[0].Slots {
			if cb1[0].Slots[i] != cb2[0].Slots[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("two passes shared a shuffle permutation")
	}

	// Seeded runs reproduce exactly, even across concurrently executed
	// chunks: a fresh service with the same seed and the same call
	// sequence must emit identical codebooks.
	svc2 := copse.NewService(
		copse.WithBackend(copse.BackendClear),
		copse.WithShuffle(true),
		copse.WithSeed(9),
	)
	if err := svc2.Register("m", c); err != nil {
		t.Fatal(err)
	}
	_, replay, err := svc2.ClassifyBatchShuffled(context.Background(), "m", batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range codebooks {
		for j := range codebooks[i].Slots {
			if replay[i].Slots[j] != codebooks[i].Slots[j] {
				t.Fatalf("query %d: seeded replay produced a different codebook", i)
			}
		}
	}
}

// TestServiceShuffledServingBGV runs shuffled batched serving on real
// ciphertexts: a PlanShuffle-compiled model, the scheduled chain, and a
// full-capacity batch decoded through per-query codebooks.
func TestServiceShuffledServingBGV(t *testing.T) {
	if testing.Short() {
		t.Skip("BGV shuffled serving is slow")
	}
	forest := copse.ExampleForest()
	c, err := copse.Compile(forest, copse.CompileOptions{Slots: 1024, PlanShuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	svc := copse.NewService(
		copse.WithBackend(copse.BackendBGV),
		copse.WithSecurity(copse.SecurityTest),
		copse.WithShuffle(true),
		copse.WithWorkers(4),
		copse.WithSeed(11),
	)
	if err := svc.Register("fig1", c); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	rng := rand.New(rand.NewPCG(13, 1))
	capacity := c.Meta.BatchCapacity()
	batch := make([][]uint64, capacity)
	for i := range batch {
		batch[i] = []uint64{rng.Uint64N(16), rng.Uint64N(16)}
	}
	results, codebooks, err := svc.ClassifyBatchShuffled(context.Background(), "fig1", batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, feats := range batch {
		wantVotes := make([]int, len(forest.Labels))
		for _, lbl := range forest.Classify(feats) {
			wantVotes[lbl]++
		}
		for lbl, v := range results[i].Votes {
			if v != wantVotes[lbl] {
				t.Errorf("query %d (%v): votes %v, want %v", i, feats, results[i].Votes, wantVotes)
				break
			}
		}
		if codebooks[i] == nil {
			t.Fatalf("query %d: no codebook", i)
		}
	}
}

// TestServiceShuffleRequiresHeadroom: registering a model whose schedule
// lands the result below the shuffle entry on a shuffled BGV service
// must fail fast with the PlanShuffle hint.
func TestServiceShuffleRequiresHeadroom(t *testing.T) {
	c, err := copse.Compile(copse.ExampleForest(), copse.CompileOptions{Slots: 1024}) // no PlanShuffle
	if err != nil {
		t.Fatal(err)
	}
	if c.Meta.LevelPlan == nil {
		t.Skip("no level plan on this model")
	}
	svc := copse.NewService(
		copse.WithBackend(copse.BackendBGV),
		copse.WithSecurity(copse.SecurityTest),
		copse.WithShuffle(true),
	)
	err = svc.Register("fig1", c)
	if err == nil {
		t.Fatal("shuffled service accepted a model without shuffle headroom")
	}
	if !strings.Contains(err.Error(), "PlanShuffle") {
		t.Errorf("error %q does not name PlanShuffle", err)
	}
}

// TestServiceNoiseMeasurement: WithNoiseMeasurement fills Trace.Noise
// with positive margins on BGV and leaves -1 when off.
func TestServiceNoiseMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("BGV noise measurement test is slow")
	}
	c, err := copse.Compile(copse.ExampleForest(), copse.CompileOptions{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := copse.NewSystem(c, copse.SystemConfig{
		Backend: copse.BackendBGV, Scenario: copse.ScenarioOffload,
		Security: copse.SecurityTest, MeasureNoise: true, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := sys.Diane.EncryptQuery([]uint64{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	_, trace, err := sys.Sally.Classify(q)
	if err != nil {
		t.Fatal(err)
	}
	n := trace.Noise
	for name, v := range map[string]int{
		"query": n.Query, "decisions": n.Decisions, "branchvec": n.BranchVec,
		"levelresult": n.LevelResult, "result": n.Result,
	} {
		if v <= 0 {
			t.Errorf("measured %s noise budget %d, want positive", name, v)
		}
	}
	// Off by default.
	sys2, err := copse.NewSystem(c, copse.SystemConfig{
		Backend: copse.BackendClear, Scenario: copse.ScenarioOffload,
	})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := sys2.Diane.EncryptQuery([]uint64{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	_, trace2, err := sys2.Sally.Classify(q2)
	if err != nil {
		t.Fatal(err)
	}
	if trace2.Noise.Result != -1 {
		t.Errorf("unmeasured trace carries noise %d, want -1", trace2.Noise.Result)
	}
}

// TestServiceLatencyHistogram: per-model latency histograms accumulate
// only for the models actually served, and the quantiles are ordered.
func TestServiceLatencyHistogram(t *testing.T) {
	f1, c1 := trainedModel(t, 71, 256)
	_, c2 := trainedModel(t, 72, 256)
	svc := copse.NewService(copse.WithBackend(copse.BackendClear))
	if err := svc.Register("hot", c1); err != nil {
		t.Fatal(err)
	}
	if err := svc.Register("cold", c2); err != nil {
		t.Fatal(err)
	}
	const rounds = 5
	for i := 0; i < rounds; i++ {
		q := make([]uint64, f1.NumFeatures)
		for j := range q {
			q[j] = uint64(i+j) % (1 << uint(f1.Precision))
		}
		if _, err := svc.ClassifyBatch(context.Background(), "hot", [][]uint64{q}); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	hot, ok := st.ModelLatency["hot"]
	if !ok {
		t.Fatal("no latency stats for served model")
	}
	if hot.Count != rounds {
		t.Errorf("hot latency count = %d, want %d", hot.Count, rounds)
	}
	if hot.P50 <= 0 || hot.P50 > hot.P95 || hot.P95 > hot.P99 {
		t.Errorf("quantiles out of order: p50=%v p95=%v p99=%v", hot.P50, hot.P95, hot.P99)
	}
	if cold := st.ModelLatency["cold"]; cold.Count != 0 {
		t.Errorf("cold model recorded %d observations", cold.Count)
	}
}
