package copse_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"testing"
	"time"

	"copse"
)

// batchedService stages one trainedModel on a clear-backend service
// with the dynamic batcher on.
func batchedService(t *testing.T, seed uint64, policy copse.BatchPolicy, extra ...copse.Option) (*copse.Forest, *copse.Service) {
	t.Helper()
	f, c := trainedModel(t, seed, 256)
	opts := append([]copse.Option{
		copse.WithBackend(copse.BackendClear),
		copse.WithBatchPolicy(policy),
	}, extra...)
	svc := copse.NewService(opts...)
	if err := svc.Register("m", c); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return f, svc
}

// TestAggregatorCoalesces: N uncoordinated single-query goroutines
// share one slot-packed pass (MinFill pins the pass boundary), every
// caller gets its own correct result, and the batcher counters land in
// Stats.
func TestAggregatorCoalesces(t *testing.T) {
	const clients = 4 // trainedModel capacity at 256 slots: one full pass
	f, svc := batchedService(t, 51, copse.BatchPolicy{
		Window: time.Minute, // the full batch fires long before this
	})
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			feats := []uint64{uint64(g) % 16, uint64(g+5) % 16, uint64(g+11) % 16}
			results, err := svc.ClassifyBatch(context.Background(), "m", [][]uint64{feats})
			if err != nil {
				errs[g] = err
				return
			}
			want := f.Classify(feats)
			for ti, lbl := range results[0].PerTree {
				if lbl != want[ti] {
					errs[g] = fmt.Errorf("client %d tree %d: L%d, want L%d", g, ti, lbl, want[ti])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	st := svc.Stats()
	if st.BatcherPasses != 1 {
		t.Errorf("%d passes for %d coalesced clients, want 1", st.BatcherPasses, clients)
	}
	if st.CoalescedQueries != clients {
		t.Errorf("%d coalesced queries, want %d", st.CoalescedQueries, clients)
	}
	if st.Requests != 1 {
		t.Errorf("%d backend requests, want 1", st.Requests)
	}
	if st.BatchFill != 1 {
		t.Errorf("fill %v, want 1 (full pass)", st.BatchFill)
	}
	if st.MeanBatchWait() <= 0 {
		t.Error("no batch linger recorded")
	}
}

// TestAggregatorLingerFlush: a lone query is answered when the linger
// window expires — the batcher never strands a request waiting for
// co-riders that don't come.
func TestAggregatorLingerFlush(t *testing.T) {
	f, svc := batchedService(t, 52, copse.BatchPolicy{Window: 5 * time.Millisecond})
	feats := []uint64{3, 1, 4}
	start := time.Now()
	results, err := svc.ClassifyBatch(context.Background(), "m", [][]uint64{feats})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("lone query answered in %v, before the linger window", elapsed)
	}
	if got, want := results[0].PerTree[0], f.Classify(feats)[0]; got != want {
		t.Errorf("lone query: L%d, want L%d", got, want)
	}
	if st := svc.Stats(); st.BatcherPasses != 1 || st.CoalescedQueries != 1 {
		t.Errorf("stats: %d passes / %d queries, want 1/1", st.BatcherPasses, st.CoalescedQueries)
	}
}

// TestAggregatorOverflowChain: a request larger than the model's batch
// capacity flows through the batcher as multiple passes (split +
// overflow), every query answered in order.
func TestAggregatorOverflowChain(t *testing.T) {
	f, svc := batchedService(t, 53, copse.BatchPolicy{Window: 2 * time.Millisecond})
	capacity, err := svc.BatchCapacity("m")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(53, 1))
	batch := make([][]uint64, 2*capacity+3)
	for i := range batch {
		batch[i] = []uint64{rng.Uint64N(16), rng.Uint64N(16), rng.Uint64N(16)}
	}
	results, err := svc.ClassifyBatch(context.Background(), "m", batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(batch) {
		t.Fatalf("%d results for %d queries", len(results), len(batch))
	}
	for i, feats := range batch {
		want := f.Classify(feats)
		for ti, lbl := range results[i].PerTree {
			if lbl != want[ti] {
				t.Errorf("query %d tree %d: L%d, want L%d", i, ti, lbl, want[ti])
			}
		}
	}
	if st := svc.Stats(); st.BatcherPasses < 3 {
		t.Errorf("%d passes for %d queries at capacity %d, want ≥ 3", st.BatcherPasses, len(batch), capacity)
	}
}

// TestAggregatorCancelMidLinger: a caller whose context expires while
// its query lingers abandons its slots without corrupting the
// neighbours' results; a caller cancelled after completion still gets
// its answer.
func TestAggregatorCancelMidLinger(t *testing.T) {
	f, svc := batchedService(t, 54, copse.BatchPolicy{Window: 30 * time.Millisecond})

	// Cancelled while lingering alone: the waiter abandons, the flush
	// finds nothing to run.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := svc.ClassifyBatch(ctx, "m", [][]uint64{{1, 2, 3}}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cancelled linger returned %v, want deadline exceeded", err)
	}
	if st := svc.Stats(); st.Failures == 0 {
		t.Error("cancellation not counted as failure")
	}

	// A neighbour cancelled mid-linger must not disturb survivors
	// sharing the window.
	var wg sync.WaitGroup
	survivors := make([]error, 5)
	wg.Add(1)
	doomed, cancelDoomed := context.WithCancel(context.Background())
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		cancelDoomed()
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := svc.ClassifyBatch(doomed, "m", [][]uint64{{9, 9, 9}})
		if !errors.Is(err, context.Canceled) {
			survivors[4] = fmt.Errorf("doomed caller returned %v, want canceled", err)
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			feats := []uint64{uint64(g), uint64(g + 1), uint64(g + 2)}
			results, err := svc.ClassifyBatch(context.Background(), "m", [][]uint64{feats})
			if err != nil {
				survivors[g] = err
				return
			}
			if got, want := results[0].PerTree[0], f.Classify(feats)[0]; got != want {
				survivors[g] = fmt.Errorf("survivor %d: L%d, want L%d", g, got, want)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range survivors {
		if err != nil {
			t.Error(err)
		}
	}
	// Wait out any pass still delivering so Cleanup's Close doesn't race
	// the assertions above in logs.
	if st := svc.Stats(); st.BatcherPasses == 0 {
		t.Error("no pass fired for the survivors")
	}
}

// TestAggregatorShuffledRouting: coalesced shuffled passes route each
// caller its own codebook window — votes must match the plaintext walk
// through the caller's codebook, per-tree labels stay hidden.
func TestAggregatorShuffledRouting(t *testing.T) {
	const clients = 3 // < capacity 4: MinFill pins the pass boundary
	f, svc := batchedService(t, 55, copse.BatchPolicy{
		Window:  time.Minute,
		MinFill: clients,
	}, copse.WithShuffle(true), copse.WithSeed(7))
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			feats := []uint64{uint64(g+2) % 16, uint64(g*3) % 16, uint64(g+9) % 16}
			results, codebooks, err := svc.ClassifyBatchShuffled(context.Background(), "m", [][]uint64{feats})
			if err != nil {
				errs[g] = err
				return
			}
			if results[0].PerTree != nil {
				errs[g] = fmt.Errorf("client %d: shuffled result exposes per-tree labels", g)
				return
			}
			if codebooks[0] == nil || len(codebooks[0].Slots) == 0 {
				errs[g] = fmt.Errorf("client %d: missing codebook", g)
				return
			}
			wantVotes := make([]int, len(f.Labels))
			for _, lbl := range f.Classify(feats) {
				wantVotes[lbl]++
			}
			for lbl, v := range results[0].Votes {
				if v != wantVotes[lbl] {
					errs[g] = fmt.Errorf("client %d: votes %v, want %v", g, results[0].Votes, wantVotes)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if st := svc.Stats(); st.BatcherPasses != 1 {
		t.Errorf("%d passes, want 1 (codebook routing must survive coalescing)", st.BatcherPasses)
	}
}

// aggStress hammers a batched service with N clients × mixed request
// sizes (single queries, half-capacity, capacity+1 overflow) and checks
// every caller's every result against the plaintext walk. Run under
// -race this is the aggregator's concurrency contract.
func aggStress(t *testing.T, f *copse.Forest, svc *copse.Service, clients, rounds int) {
	t.Helper()
	capacity, err := svc.BatchCapacity("m")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 0xa66))
			for i := 0; i < rounds; i++ {
				n := 1
				switch i % 3 {
				case 1:
					n = max(capacity/2, 1)
				case 2:
					n = capacity + 1 // overflow: splits across passes
				}
				batch := make([][]uint64, n)
				for k := range batch {
					batch[k] = make([]uint64, f.NumFeatures)
					for j := range batch[k] {
						batch[k][j] = rng.Uint64N(1 << uint(f.Precision))
					}
				}
				results, err := svc.ClassifyBatch(context.Background(), "m", batch)
				if err != nil {
					errc <- fmt.Errorf("client %d round %d: %w", g, i, err)
					return
				}
				if len(results) != n {
					errc <- fmt.Errorf("client %d round %d: %d results for %d queries", g, i, len(results), n)
					return
				}
				for k, feats := range batch {
					want := f.Classify(feats)
					for ti, lbl := range results[k].PerTree {
						if lbl != want[ti] {
							errc <- fmt.Errorf("client %d round %d query %d tree %d: L%d, want L%d", g, i, k, ti, lbl, want[ti])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestAggregatorStressClear: the mixed-size -race stress on the exact
// backend, with an in-flight cap so batcher backpressure and the queue
// path are exercised together.
func TestAggregatorStressClear(t *testing.T) {
	f, svc := batchedService(t, 56, copse.BatchPolicy{Window: time.Millisecond},
		copse.WithWorkers(2), copse.WithMaxInFlight(2))
	aggStress(t, f, svc, 8, 6)
	st := svc.Stats()
	if st.BatcherPasses == 0 || st.CoalescedQueries == 0 {
		t.Errorf("stress ran without the batcher: %d passes, %d queries", st.BatcherPasses, st.CoalescedQueries)
	}
	if st.CoalescedQueries < st.BatcherPasses {
		t.Errorf("stats: %d coalesced queries < %d passes", st.CoalescedQueries, st.BatcherPasses)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight %d after drain", st.InFlight)
	}
}

// TestAggregatorStressBGV is the same stress on real BGV ciphertexts:
// coalesced passes over one shared evaluator and key set must be
// race-free and bit-correct.
func TestAggregatorStressBGV(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent BGV stress is slow")
	}
	forest := copse.ExampleForest()
	c, err := copse.Compile(forest, copse.CompileOptions{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	svc := copse.NewService(
		copse.WithBackend(copse.BackendBGV),
		copse.WithSecurity(copse.SecurityTest),
		copse.WithWorkers(2),
		copse.WithSeed(13),
		copse.WithBatchWindow(2*time.Millisecond),
	)
	if err := svc.Register("m", c); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	aggStress(t, forest, svc, 4, 2)
	if st := svc.Stats(); st.BatcherPasses == 0 {
		t.Error("BGV stress ran without the batcher")
	}
}

// TestAggregatorServiceClose: Close fails queued waiters instead of
// stranding them, and later submissions are rejected.
func TestAggregatorServiceClose(t *testing.T) {
	_, svc := batchedService(t, 57, copse.BatchPolicy{Window: time.Hour})
	errc := make(chan error, 1)
	go func() {
		_, err := svc.ClassifyBatch(context.Background(), "m", [][]uint64{{1, 2, 3}})
		errc <- err
	}()
	// Let the waiter reach the aggregator before closing.
	time.Sleep(10 * time.Millisecond)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Error("queued waiter returned nil after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter stranded by Close")
	}
	if _, err := svc.ClassifyBatch(context.Background(), "m", [][]uint64{{1, 2, 3}}); err == nil {
		t.Error("closed service accepted a classify")
	}
}

// TestDynamicBatchPerfSmoke is the CI throughput gate: 16 concurrent
// single-query clients on the clear backend must see ≥ 4× queries/sec
// with the batcher on vs off under an equal core budget
// (WithMaxInFlight(1) both sides — the win is queries per pass, not
// parallelism). Gated by COPSE_PERF_SMOKE=1: wall-clock assertions
// don't belong in the default unit run.
func TestDynamicBatchPerfSmoke(t *testing.T) {
	if os.Getenv("COPSE_PERF_SMOKE") != "1" {
		t.Skip("set COPSE_PERF_SMOKE=1 to run the dynamic-batching throughput gate")
	}
	const clients = 16
	const perClient = 4
	f, c := trainedModel(t, 58, 512) // capacity 8: 16 clients fill passes 2x over
	run := func(window time.Duration) float64 {
		opts := []copse.Option{
			copse.WithBackend(copse.BackendClear),
			copse.WithMaxInFlight(1),
			copse.WithBatchPolicy(copse.BatchPolicy{Window: window}),
		}
		svc := copse.NewService(opts...)
		if err := svc.Register("m", c); err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		var wg sync.WaitGroup
		errc := make(chan error, clients)
		start := time.Now()
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(g), 0x5e))
				for i := 0; i < perClient; i++ {
					feats := make([]uint64, f.NumFeatures)
					for j := range feats {
						feats[j] = rng.Uint64N(1 << uint(f.Precision))
					}
					results, err := svc.ClassifyBatch(context.Background(), "m", [][]uint64{feats})
					if err != nil {
						errc <- err
						return
					}
					if got, want := results[0].PerTree[0], f.Classify(feats)[0]; got != want {
						errc <- fmt.Errorf("client %d: L%d, want L%d", g, got, want)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errc)
		for err := range errc {
			t.Fatal(err)
		}
		return float64(clients*perClient) / elapsed.Seconds()
	}
	off := run(0)
	on := run(10 * time.Millisecond)
	t.Logf("batcher off: %.0f q/s, on: %.0f q/s (%.1fx)", off, on, on/off)
	if on < 4*off {
		t.Errorf("batcher on: %.0f q/s, off: %.0f q/s — want ≥ 4x", on, off)
	}
}
