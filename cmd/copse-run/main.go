// Command copse-run serves secure inference from a compiled artifact: it
// stages the model onto a copse.Service, slot-packs the requested
// queries into as few homomorphic passes as possible, and reports the
// results, the per-pass timing, and what the server could infer from
// ciphertext shapes alone.
//
// Usage:
//
//	copse-run -artifact income5.copse -queries 30,9,40,0,0,3,7,1
//	copse-run -artifact m.copse -queries "3,5;0,7;12,2" -backend clear
//	copse-run -artifact m.copse -features 3,5 -scenario servermodel
//
// -queries takes one or more semicolon-separated feature vectors;
// -features is the single-query spelling kept for compatibility.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"copse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("copse-run: ")

	artifact := flag.String("artifact", "", "compiled model artifact")
	queryArg := flag.String("queries", "", "semicolon-separated feature vectors, each comma-separated")
	featArg := flag.String("features", "", "single feature vector (compatibility alias for -queries)")
	backendArg := flag.String("backend", "bgv", "bgv or clear")
	scenarioArg := flag.String("scenario", "offload", "offload, servermodel, or clienteval")
	workers := flag.Int("workers", 1, "intra-query parallelism")
	seed := flag.Uint64("seed", 0, "deterministic keys/encryption when non-zero")
	flag.Parse()

	if *artifact == "" || (*queryArg == "" && *featArg == "") {
		log.Fatal("need -artifact FILE and -queries LIST[;LIST...]")
	}
	if *queryArg != "" && *featArg != "" {
		log.Fatal("-queries and -features are mutually exclusive")
	}
	spec := *queryArg
	if spec == "" {
		spec = *featArg
	}
	queries, err := parseQueries(spec)
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Open(*artifact)
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := copse.ReadArtifact(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	kind, err := copse.ParseBackend(*backendArg)
	if err != nil {
		log.Fatal(err)
	}
	scenario, err := copse.ParseScenario(*scenarioArg)
	if err != nil {
		log.Fatal(err)
	}
	opts := []copse.Option{
		copse.WithWorkers(*workers),
		copse.WithSeed(*seed),
		copse.WithBackend(kind),
		copse.WithScenario(scenario),
	}
	if kind == copse.BackendBGV {
		preset, err := copse.SecurityForSlots(compiled.Meta.Slots)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, copse.WithSecurity(preset))
	}

	svc := copse.NewService(opts...)
	const model = "model"
	if err := svc.Register(model, compiled); err != nil {
		log.Fatal(err)
	}
	meta, err := svc.Meta(model)
	if err != nil {
		log.Fatal(err)
	}
	capacity, err := svc.BatchCapacity(model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %s\n", meta)
	fmt.Printf("batch capacity: %d queries per homomorphic pass\n", capacity)

	start := time.Now()
	results, err := svc.ClassifyBatch(context.Background(), model, queries)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	for i, res := range results {
		fmt.Printf("query %v:", queries[i])
		fmt.Printf(" per-tree")
		for _, l := range res.PerTree {
			fmt.Printf(" %s", meta.LabelNames[l])
		}
		fmt.Printf(", plurality %s\n", meta.LabelNames[res.Plurality()])
	}

	st := svc.Stats()
	passes := st.Requests
	fmt.Printf("%d queries in %d pass(es), %v total (%v mean per pass)\n",
		len(queries), passes, elapsed.Round(time.Millisecond), st.MeanLatency().Round(time.Millisecond))
	if view, err := svc.ServerView(model); err == nil {
		fmt.Printf("server-inferable structure: q̂=%d b̂=%d d=%d p=%d\n", view.QPad, view.BPad, view.D, view.P)
	}
	fmt.Printf("backend ops: %v\n", svc.Backend().Counts())
}

// parseQueries parses "1,2;3,4" into feature vectors.
func parseQueries(spec string) ([][]uint64, error) {
	var out [][]uint64
	for _, q := range strings.Split(spec, ";") {
		q = strings.TrimSpace(q)
		if q == "" {
			continue
		}
		var feats []uint64
		for _, part := range strings.Split(q, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad feature %q: %v", part, err)
			}
			feats = append(feats, v)
		}
		out = append(out, feats)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no queries in %q", spec)
	}
	return out, nil
}
