// Command copse-run serves secure inference from a compiled artifact: it
// plays all three parties (Maurice loads and encrypts the model, Diane
// encrypts the features, Sally classifies) and reports the result, the
// per-stage timing, and what the server could infer from ciphertext
// shapes alone.
//
// Usage:
//
//	copse-run -artifact income5.copse -features 30,9,40,0,0,3,7,1
//	copse-run -artifact m.copse -features 3,5 -backend clear -scenario servermodel
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"copse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("copse-run: ")

	artifact := flag.String("artifact", "", "compiled model artifact")
	featArg := flag.String("features", "", "comma-separated quantized feature values")
	backendArg := flag.String("backend", "bgv", "bgv or clear")
	scenarioArg := flag.String("scenario", "offload", "offload, servermodel, or clienteval")
	workers := flag.Int("workers", 1, "intra-query parallelism")
	seed := flag.Uint64("seed", 0, "deterministic keys/encryption when non-zero")
	flag.Parse()

	if *artifact == "" || *featArg == "" {
		log.Fatal("need -artifact FILE and -features LIST")
	}
	f, err := os.Open(*artifact)
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := copse.ReadArtifact(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	cfg := copse.SystemConfig{Workers: *workers, Seed: *seed}
	switch *backendArg {
	case "bgv":
		cfg.Backend = copse.BackendBGV
		switch compiled.Meta.Slots {
		case 1024:
			cfg.Security = copse.SecurityTest
		case 2048:
			cfg.Security = copse.SecurityDemo
		case 16384:
			cfg.Security = copse.Security128
		default:
			log.Fatalf("no BGV preset with %d slots; recompile with -slots 1024 or 2048", compiled.Meta.Slots)
		}
	case "clear":
		cfg.Backend = copse.BackendClear
	default:
		log.Fatalf("unknown backend %q", *backendArg)
	}
	switch *scenarioArg {
	case "offload":
		cfg.Scenario = copse.ScenarioOffload
	case "servermodel":
		cfg.Scenario = copse.ScenarioServerModel
	case "clienteval":
		cfg.Scenario = copse.ScenarioClientEval
	default:
		log.Fatalf("unknown scenario %q", *scenarioArg)
	}

	var features []uint64
	for _, part := range strings.Split(*featArg, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			log.Fatalf("bad feature %q: %v", part, err)
		}
		features = append(features, v)
	}

	sys, err := copse.NewSystem(compiled, cfg)
	if err != nil {
		log.Fatal(err)
	}
	query, err := sys.Diane.EncryptQuery(features)
	if err != nil {
		log.Fatal(err)
	}
	encrypted, trace, err := sys.Sally.Classify(query)
	if err != nil {
		log.Fatal(err)
	}
	result, err := sys.Diane.DecryptResult(encrypted)
	if err != nil {
		log.Fatal(err)
	}

	meta := sys.Sally.Meta()
	fmt.Printf("model: %s\n", meta)
	fmt.Printf("per-tree labels:")
	for _, l := range result.PerTree {
		fmt.Printf(" %s", meta.LabelNames[l])
	}
	fmt.Println()
	fmt.Printf("plurality: %s\n", meta.LabelNames[result.Plurality()])
	fmt.Printf("stage times: compare=%v reshuffle=%v levels=%v accumulate=%v total=%v\n",
		trace.Compare, trace.Reshuffle, trace.Levels, trace.Accumulate, trace.Total)
	view := sys.Sally.ServerView()
	fmt.Printf("server-inferable structure: q̂=%d b̂=%d d=%d p=%d\n", view.QPad, view.BPad, view.D, view.P)
	fmt.Printf("backend ops: %v\n", sys.Backend().Counts())
}
