// Command copse-gen produces the paper's benchmark inputs: the Table 6
// microbenchmark forests and the synthetic income/soccer datasets. It
// generates models and data to feed the pipeline — it does not generate
// code; for specialized kernel codegen see `copse-compile -gen`.
//
// Usage:
//
//	copse-gen -suite table6 -dir models/      # eight microbenchmark forests
//	copse-gen -dataset income -rows 3000 -out income.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"copse"
	"copse/internal/synth"
	"copse/internal/train"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("copse-gen: ")

	suite := flag.String("suite", "", "generate a model suite: table6")
	dir := flag.String("dir", ".", "output directory for -suite")
	dataset := flag.String("dataset", "", "generate a dataset CSV: income or soccer")
	rows := flag.Int("rows", 3000, "dataset rows")
	seed := flag.Uint64("seed", 1, "generation seed")
	out := flag.String("out", "", "output path for -dataset (default stdout)")
	flag.Parse()

	switch {
	case *suite == "table6":
		for _, mb := range synth.Microbenchmarks() {
			forest, err := synth.Generate(mb.Spec)
			if err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*dir, mb.Name+".forest")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := copse.FormatModel(f, forest); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (depth=%d branches=%d trees=%d p=%d)\n",
				path, forest.Depth(), forest.Branches(), len(forest.Trees), forest.Precision)
		}
	case *dataset != "":
		var ds *synth.Dataset
		switch *dataset {
		case "income":
			ds = synth.Income(*rows, *seed)
		case "soccer":
			ds = synth.Soccer(*rows, *seed)
		default:
			log.Fatalf("unknown dataset %q", *dataset)
		}
		w := os.Stdout
		if *out != "" {
			var err error
			w, err = os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer w.Close()
		}
		if err := train.WriteCSV(w, ds.X, ds.Y, ds.FeatureNames, ds.Labels); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("need -suite table6 or -dataset income|soccer (this tool generates benchmark inputs; for kernel codegen use copse-compile -gen)")
	}
}
