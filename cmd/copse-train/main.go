// Command copse-train fits a random forest (the library's scikit-learn
// stand-in) on a CSV dataset or one of the built-in synthetic datasets,
// and writes the quantized model in the COPSE text format.
//
// Usage:
//
//	copse-train -dataset income -trees 5 -out income5.forest
//	copse-train -csv data.csv -trees 15 -depth 8 -out model.forest
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"copse"
	"copse/internal/synth"
	"copse/internal/train"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("copse-train: ")

	csvPath := flag.String("csv", "", "CSV dataset (header row, float features, label in last column)")
	dataset := flag.String("dataset", "", "built-in synthetic dataset: income or soccer")
	rows := flag.Int("rows", 3000, "rows to generate for built-in datasets")
	trees := flag.Int("trees", 5, "number of trees")
	depth := flag.Int("depth", 7, "maximum tree depth")
	minLeaf := flag.Int("minleaf", 8, "minimum samples per leaf")
	precision := flag.Int("precision", 8, "fixed-point precision bits")
	seed := flag.Uint64("seed", 1, "training seed")
	out := flag.String("out", "", "output model path (default stdout)")
	flag.Parse()

	var x [][]float64
	var y []int
	var labels []string
	switch {
	case *csvPath != "":
		f, err := os.Open(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		var err2 error
		x, y, _, labels, err2 = train.LoadCSV(f)
		if err2 != nil {
			log.Fatal(err2)
		}
	case *dataset == "income":
		ds := synth.Income(*rows, *seed)
		x, y, labels = ds.X, ds.Y, ds.Labels
	case *dataset == "soccer":
		ds := synth.Soccer(*rows, *seed)
		x, y, labels = ds.X, ds.Y, ds.Labels
	default:
		log.Fatal("need -csv FILE or -dataset income|soccer")
	}

	tm, err := copse.Train(x, y, labels, copse.TrainConfig{
		NumTrees:  *trees,
		MaxDepth:  *depth,
		MinLeaf:   *minLeaf,
		Precision: *precision,
		Seed:      *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	acc, err := tm.Accuracy(x, y)
	if err != nil {
		log.Fatal(err)
	}
	f := tm.Forest
	fmt.Fprintf(os.Stderr, "trained %d trees: depth=%d branches=%d leaves=%d K=%d train-accuracy=%.3f\n",
		len(f.Trees), f.Depth(), f.Branches(), f.Leaves(), f.MaxMultiplicity(), acc)

	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
	}
	if err := copse.FormatModel(w, f); err != nil {
		log.Fatal(err)
	}
}
