// Command copse-compile is the COPSE staging compiler: it reads a
// decision-forest model in the text format, restructures it into the
// vectorizable form of the paper's §4.2, and writes a compiled artifact.
// With -emit it additionally generates a standalone Go program
// specialized to the model (the analogue of the paper's generated C++),
// and with -gen an unrolled kernel package (model_gen.go) that plugs
// into an existing binary: linking it makes the engine dispatch
// Classify to straight-line generated code instead of the op-program
// interpreter (DESIGN.md §13).
//
// Usage:
//
//	copse-compile -model income5.forest -out income5.copse
//	copse-compile -model income5.forest -slots 2048 -emit main.go
//	copse-compile -model income5.forest -gen income5_gen.go -genpkg kernels
//	copse-compile -model income5.forest -out income5.copse -shards 2
//
// Not to be confused with copse-gen, which generates benchmark *inputs*
// (synthetic forests and datasets); -gen here generates kernel *code*
// from a model.
//
// With -shards K the compiled forest is additionally split tree-wise
// into K self-contained shard artifacts plus a merge manifest
// (DESIGN.md §12): income5.shard0.copse, income5.shard1.copse, ...,
// and income5.manifest.json, ready for copse-serve -worker.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"copse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("copse-compile: ")

	modelPath := flag.String("model", "", "input model in COPSE text format")
	slots := flag.Int("slots", 1024, "target packing width (1024 = BGV test preset, 2048 = demo preset)")
	padK := flag.Int("padk", 0, "pad feature multiplicity to this bound instead of revealing exact K (0 = exact)")
	planShuffle := flag.Bool("planshuffle", false, "reserve level headroom for result shuffling (required to serve the artifact with copse-serve -shuffle on the BGV backend)")
	out := flag.String("out", "", "output artifact path")
	emit := flag.String("emit", "", "also emit a standalone Go program to this path")
	gen := flag.String("gen", "", "also emit an unrolled specialized kernel package (_gen.go) to this path; see -genpkg (kernel codegen — unrelated to the copse-gen input generator)")
	genPkg := flag.String("genpkg", "kernels", "package name for the -gen kernel file")
	shards := flag.Int("shards", 0, "also split the forest tree-wise into this many shard artifacts plus a merge manifest, derived from -out (cluster serving, DESIGN.md §12)")
	flag.Parse()

	if *modelPath == "" {
		log.Fatal("need -model FILE")
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	forest, err := copse.ParseModel(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	compiled, err := copse.Compile(forest, copse.CompileOptions{
		Slots:             *slots,
		PadMultiplicityTo: *padK,
		PlanShuffle:       *planShuffle,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := compiled.Meta
	fmt.Fprintf(os.Stderr, "staged %s\n", m.String())
	fmt.Fprintf(os.Stderr, "  padded widths: q̂=%d b̂=%d; rotation keys: %d; recommended BGV levels: %d\n",
		m.QPad, m.BPad, len(m.RotationSteps), m.RecommendedLevels)
	fmt.Fprintf(os.Stderr, "  ct-ct depth: %d (encrypted model) / %d (plaintext model)\n",
		m.CtDepthCipherModel, m.CtDepthPlainModel)
	if plan := m.LevelPlan; plan != nil {
		fmt.Fprintf(os.Stderr, "  level plan: %d-prime chain (reactive: %d); cipher-model stages compare=%d reshuffle=%d level=%d accumulate=%d final=%d\n",
			plan.Levels, m.RecommendedLevels,
			plan.Cipher.Compare, plan.Cipher.Reshuffle, plan.Cipher.Level, plan.Cipher.Accumulate, plan.Cipher.Final)
	}

	if *out != "" {
		w, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := copse.WriteArtifact(w, compiled); err != nil {
			log.Fatal(err)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote artifact %s\n", *out)
	}
	if *shards > 0 {
		if *out == "" {
			log.Fatal("-shards needs -out to derive the shard artifact paths")
		}
		pieces, manifest, err := copse.ShardForest(compiled, *shards)
		if err != nil {
			log.Fatal(err)
		}
		stem := strings.TrimSuffix(*out, filepath.Ext(*out))
		for i, piece := range pieces {
			path := fmt.Sprintf("%s.shard%d.copse", stem, i)
			w, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := copse.WriteArtifact(w, piece); err != nil {
				log.Fatal(err)
			}
			if err := w.Close(); err != nil {
				log.Fatal(err)
			}
			r := manifest.Ranges[i]
			fmt.Fprintf(os.Stderr, "wrote shard %s (trees %d..%d)\n", path, r.TreeStart, r.TreeEnd-1)
		}
		mpath := stem + ".manifest.json"
		w, err := os.Create(mpath)
		if err != nil {
			log.Fatal(err)
		}
		if err := copse.WriteManifest(w, manifest); err != nil {
			log.Fatal(err)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote merge manifest %s (%d shards, chain %d levels)\n", mpath, manifest.Shards, manifest.ChainLevels)
	}
	if *emit != "" {
		w, err := os.Create(*emit)
		if err != nil {
			log.Fatal(err)
		}
		if err := copse.GenerateProgram(w, compiled); err != nil {
			log.Fatal(err)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "emitted program %s\n", *emit)
	}
	if *gen != "" {
		w, err := os.Create(*gen)
		if err != nil {
			log.Fatal(err)
		}
		if err := copse.GenerateKernel(w, compiled, *genPkg); err != nil {
			log.Fatal(err)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		hash, err := copse.ArtifactHash(compiled)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "emitted kernel package %s (package %s, artifact %s…)\n", *gen, *genPkg, hash[:16])
	}
	if *out == "" && *emit == "" && *gen == "" {
		if err := copse.WriteArtifact(os.Stdout, compiled); err != nil {
			log.Fatal(err)
		}
	}
}
