// Command copse-serve runs a copse.Service behind an HTTP/JSON API: it
// loads one or more compiled model artifacts onto a shared backend and
// answers classification batches concurrently, slot-packing each
// request's queries into as few homomorphic passes as possible.
//
// Usage:
//
//	copse-serve -listen :8080 -model fraud=fraud.copse -model churn=churn.copse
//	copse-serve -listen :8080 -model m=income5.copse -backend clear -workers 8
//	copse-serve -listen :8080 -model m=income5.copse -batchwindow 20ms
//
// With -batchwindow, concurrent requests for the same model coalesce
// into shared slot-packed homomorphic passes (the dynamic batcher):
// each request waits up to the window for co-riders, then one pass
// answers every rider's queries.
//
// Cluster modes (DESIGN.md §12) — a worker node serves shard
// artifacts produced by copse-compile -shards, a gateway fans queries
// across the workers and merges the encrypted per-shard vote sums:
//
//	copse-serve -worker -listen :9001 -seed 42 \
//	    -manifest fraud=fraud.manifest.json -shards fraud=fraud.shard0.copse
//	copse-serve -gateway -listen :8080 -workers http://h1:9001,http://h2:9002
//
// Resilience knobs (DESIGN.md §15): -max-inflight plus -shedqueue bound
// the admission queue — overflow is rejected with a typed 429 +
// Retry-After instead of queuing without bound (worker and single-node
// modes); -breaker sets the consecutive-failure threshold that opens a
// worker's circuit breaker and -retries the bounded retry rounds over a
// shard's holders (gateway mode).
//
// Endpoints:
//
//	POST /v1/classify  {"model": "fraud", "queries": [[3,5,...], ...]}
//	  → {"model": "fraud", "results": [{"label": ..., "labelName": ...,
//	     "votes": [...], "perTree": [...]}, ...], "latencyMS": ...}
//	GET  /v1/models    → per-model shape and batch capacity
//	GET  /v1/stats     → request/query counters, latency p50/p95/p99
//	GET  /healthz      → 200 once serving
//
// Every mode shuts down gracefully on SIGINT/SIGTERM: the listener
// closes, in-flight requests drain (bounded by -drain), then the
// service and its key material are released.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"copse"
	"copse/internal/cluster"
	"copse/internal/he/hebgv"
)

type modelFlags map[string]string

func (m modelFlags) String() string { return fmt.Sprint(map[string]string(m)) }

func (m modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want NAME=ARTIFACT, got %q", v)
	}
	if _, dup := m[name]; dup {
		return fmt.Errorf("model %q given twice", name)
	}
	m[name] = path
	return nil
}

// shardListFlags collects -shards NAME=PATH[,PATH...] (repeatable and
// accumulating: a worker may hold several shards of one forest).
type shardListFlags map[string][]string

func (m shardListFlags) String() string { return fmt.Sprint(map[string][]string(m)) }

func (m shardListFlags) Set(v string) error {
	name, paths, ok := strings.Cut(v, "=")
	if !ok || name == "" || paths == "" {
		return fmt.Errorf("want NAME=SHARD[,SHARD...], got %q", v)
	}
	for _, p := range strings.Split(paths, ",") {
		if p = strings.TrimSpace(p); p != "" {
			m[name] = append(m[name], p)
		}
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("copse-serve: ")

	models := modelFlags{}
	flag.Var(models, "model", "NAME=ARTIFACT to serve (repeatable)")
	listen := flag.String("listen", ":8080", "listen address")
	backendArg := flag.String("backend", "bgv", "bgv or clear")
	scenarioArg := flag.String("scenario", "offload", "offload, servermodel, or clienteval")
	workersArg := flag.String("workers", "", "intra-query parallelism (empty/0 = GOMAXPROCS); in -gateway mode: comma-separated worker base URLs")
	intraOp := flag.Int("intraop", 0, "ring-layer limb workers per op (0 = core budget, 1 = serial)")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent classification cap (0 = unlimited)")
	shedQueue := flag.Int("shedqueue", 0, "load-shedding queue bound: calls beyond -max-inflight wait here; overflow is rejected with 429 + Retry-After (0 = queue without bound; needs -max-inflight)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request classification timeout")
	seed := flag.Uint64("seed", 0, "deterministic keys/encryption when non-zero (tests only — except -worker mode, where a shared seed is how the fleet derives one key set; with -shuffle it also makes every shuffle permutation predictable to anyone who knows the seed, voiding the leakage hardening)")
	shuffle := flag.Bool("shuffle", false, "shuffle results (leakage hardening, §7.2.2): responses carry per-query codebooks and vote counts instead of per-tree labels; BGV models need CompileOptions.PlanShuffle")
	batchWindow := flag.Duration("batchwindow", 0, "dynamic batching linger: concurrent requests for the same model coalesce into shared slot-packed passes, waiting up to this long for co-riders (0 = off)")
	batchMax := flag.Int("batchmax", 0, "queries per coalesced pass cap (0 = model batch capacity; needs -batchwindow)")
	batchMinFill := flag.Int("batchminfill", 0, "fire a coalesced pass early once this many queries are pending (0 = only at capacity or linger expiry; needs -batchwindow)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline for in-flight requests")

	workerMode := flag.Bool("worker", false, "run as a cluster worker node serving shard artifacts (-manifest/-shards/-seed)")
	gatewayMode := flag.Bool("gateway", false, "run as a cluster gateway fronting -workers URL,URL,...")
	manifests := modelFlags{}
	flag.Var(manifests, "manifest", "NAME=MANIFEST.json shard manifest (worker mode, repeatable)")
	shardPaths := shardListFlags{}
	flag.Var(shardPaths, "shards", "NAME=SHARD.copse[,SHARD.copse...] shard artifacts to stage (worker mode, repeatable)")
	keyFile := flag.String("keyfile", "", "key-material wire file to load instead of deriving keys from -seed (worker mode)")
	writeKeys := flag.String("writekeys", "", "after staging, write the worker's full key material (secret included) to this wire file for distribution to other workers")
	probe := flag.Duration("probe", 2*time.Second, "worker health-probe interval (gateway mode)")
	breakerThreshold := flag.Int("breaker", 0, "consecutive worker failures that open its circuit breaker (gateway mode; 0 = default 3)")
	retries := flag.Int("retries", 0, "extra retry rounds over a shard's holders on failure, with exponential backoff (gateway mode; 0 = default 2, negative disables)")
	flag.Parse()

	if *workerMode && *gatewayMode {
		log.Fatal("-worker and -gateway are mutually exclusive")
	}
	if *gatewayMode {
		runGateway(gatewayOptions{
			listen:  *listen,
			workers: *workersArg,
			probe:   *probe,
			timeout: *timeout,
			drain:   *drain,
			breaker: *breakerThreshold,
			retries: *retries,
		})
		return
	}

	workers := 0
	if *workersArg != "" {
		n, err := strconv.Atoi(*workersArg)
		if err != nil {
			log.Fatalf("-workers: want an integer outside -gateway mode, got %q", *workersArg)
		}
		workers = n
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	if *workerMode {
		runWorker(workerOptions{
			listen:      *listen,
			manifests:   manifests,
			shards:      shardPaths,
			seed:        *seed,
			keyFile:     *keyFile,
			writeKeys:   *writeKeys,
			workers:     workers,
			intraOp:     *intraOp,
			maxInFlight: *maxInFlight,
			shedQueue:   *shedQueue,
			drain:       *drain,
		})
		return
	}

	if len(models) == 0 {
		log.Fatal("need at least one -model NAME=ARTIFACT")
	}
	opts := []copse.Option{
		copse.WithWorkers(workers),
		copse.WithIntraOpWorkers(*intraOp),
		copse.WithMaxInFlight(*maxInFlight),
		copse.WithShedQueue(*shedQueue),
		copse.WithSeed(*seed),
		copse.WithShuffle(*shuffle),
		copse.WithBatchPolicy(copse.BatchPolicy{
			Window:   *batchWindow,
			MaxBatch: *batchMax,
			MinFill:  *batchMinFill,
		}),
	}
	kind, err := copse.ParseBackend(*backendArg)
	if err != nil {
		log.Fatal(err)
	}
	scenario, err := copse.ParseScenario(*scenarioArg)
	if err != nil {
		log.Fatal(err)
	}
	opts = append(opts, copse.WithBackend(kind), copse.WithScenario(scenario))

	// Load every artifact first: the security preset (and so the shared
	// key set) is fixed by the models' common slot count before the
	// service is built.
	names := make([]string, 0, len(models))
	compiled := map[string]*copse.Compiled{}
	for name, path := range models {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		c, err := copse.ReadArtifact(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		names = append(names, name)
		compiled[name] = c
	}
	// Register order: deepest chain requirement first — the first model
	// sizes the shared backend's modulus chain (its level plan, or the
	// reactive recommendation) and gets the exact Galois keys, so the
	// alphabetical tie-break must not hand that role to a shallow model.
	// Ties (and the non-BGV backends) stay name-sorted for determinism.
	chainOf := func(name string) int {
		m := &compiled[name].Meta
		if m.LevelPlan != nil {
			return min(m.LevelPlan.Levels, m.RecommendedLevels)
		}
		return m.RecommendedLevels
	}
	sort.Slice(names, func(i, j int) bool {
		if ci, cj := chainOf(names[i]), chainOf(names[j]); ci != cj {
			return ci > cj
		}
		return names[i] < names[j]
	})
	if *backendArg == "bgv" {
		preset, err := copse.SecurityForSlots(compiled[names[0]].Meta.Slots)
		if err != nil {
			log.Fatalf("%s: %v", names[0], err)
		}
		opts = append(opts, copse.WithSecurity(preset))
	}

	svc := copse.NewService(opts...)
	for _, name := range names {
		if err := svc.Register(name, compiled[name]); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		capacity, _ := svc.BatchCapacity(name)
		meta, _ := svc.Meta(name)
		log.Printf("serving %q: %s, batch capacity %d", name, meta, capacity)
	}

	if *batchWindow > 0 {
		log.Printf("dynamic batching on: linger %v, max %d, minfill %d", *batchWindow, *batchMax, *batchMinFill)
	}

	srv := &server{svc: svc, timeout: *timeout, shuffle: *shuffle}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", srv.classify)
	mux.HandleFunc("GET /v1/models", srv.models)
	mux.HandleFunc("GET /v1/stats", srv.stats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	if err := serveHTTP(*listen, mux, *drain, svc.Close); err != nil {
		log.Fatal(err)
	}
}

// serveHTTP runs handler on addr until the process receives SIGINT or
// SIGTERM, then drains in-flight requests (bounded by drain) and calls
// shutdown to release the service and its key material. A listener
// error (port in use, etc.) is returned immediately.
func serveHTTP(addr string, handler http.Handler, drain time.Duration, shutdown func() error) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{Addr: addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s", addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop() // a second signal kills the process the default way
		log.Printf("signal received, draining in-flight requests (up to %v)", drain)
		dctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			log.Printf("drain deadline exceeded, closing connections: %v", err)
			srv.Close()
		}
		if shutdown != nil {
			if err := shutdown(); err != nil {
				return fmt.Errorf("shutdown: %w", err)
			}
		}
		log.Printf("shutdown complete")
		return nil
	}
}

type workerOptions struct {
	listen      string
	manifests   modelFlags
	shards      shardListFlags
	seed        uint64
	keyFile     string
	writeKeys   string
	workers     int
	intraOp     int
	maxInFlight int
	shedQueue   int
	drain       time.Duration
}

func runWorker(o workerOptions) {
	log.SetPrefix("copse-serve[worker]: ")
	if len(o.manifests) == 0 {
		log.Fatal("worker mode needs at least one -manifest NAME=MANIFEST.json")
	}
	for name := range o.shards {
		if _, ok := o.manifests[name]; !ok {
			log.Fatalf("-shards %s=... has no matching -manifest %s=...", name, name)
		}
	}

	var material *hebgv.Material
	if o.keyFile != "" {
		f, err := os.Open(o.keyFile)
		if err != nil {
			log.Fatal(err)
		}
		material, err = cluster.DecodeKeyMaterial(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", o.keyFile, err)
		}
	}

	w := cluster.NewWorker(cluster.WorkerConfig{
		Seed:           o.seed,
		Material:       material,
		Workers:        o.workers,
		IntraOpWorkers: o.intraOp,
		MaxInFlight:    o.maxInFlight,
		ShedQueue:      o.shedQueue,
	})
	for name, mpath := range o.manifests {
		mf, err := os.Open(mpath)
		if err != nil {
			log.Fatal(err)
		}
		manifest, err := copse.ReadManifest(mf)
		mf.Close()
		if err != nil {
			log.Fatalf("%s: %v", mpath, err)
		}
		if len(o.shards[name]) == 0 {
			log.Fatalf("model %q has a manifest but no -shards %s=SHARD.copse", name, name)
		}
		for _, spath := range o.shards[name] {
			sf, err := os.Open(spath)
			if err != nil {
				log.Fatal(err)
			}
			c, err := copse.ReadArtifact(sf)
			sf.Close()
			if err != nil {
				log.Fatalf("%s: %v", spath, err)
			}
			if err := w.AddShard(name, manifest, c); err != nil {
				log.Fatalf("%s: %v", spath, err)
			}
			log.Printf("staged %q shard %d/%d (%s)", name, c.Shard.Index, manifest.Shards, spath)
		}
	}
	log.Printf("key fingerprint %s", w.Fingerprint())

	if o.writeKeys != "" {
		f, err := os.Create(o.writeKeys)
		if err != nil {
			log.Fatal(err)
		}
		err = cluster.EncodeKeyMaterial(f, w.Material())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatalf("%s: %v", o.writeKeys, err)
		}
		log.Printf("wrote full key material (secret included) to %s — distribute over a private channel only", o.writeKeys)
	}

	if err := serveHTTP(o.listen, w.Handler(), o.drain, w.Close); err != nil {
		log.Fatal(err)
	}
}

type gatewayOptions struct {
	listen  string
	workers string
	probe   time.Duration
	timeout time.Duration
	drain   time.Duration
	breaker int
	retries int
}

func runGateway(o gatewayOptions) {
	log.SetPrefix("copse-serve[gateway]: ")
	var urls []string
	for _, u := range strings.Split(o.workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		log.Fatal("gateway mode needs -workers URL,URL,...")
	}

	g := cluster.NewGateway(cluster.GatewayConfig{
		Workers:        urls,
		ProbeInterval:  o.probe,
		RequestTimeout: o.timeout,
		Breaker:        cluster.BreakerConfig{Threshold: o.breaker},
		Retries:        o.retries,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err := g.Refresh(ctx)
	cancel()
	if err != nil {
		// Workers may simply not be up yet; the prober keeps retrying.
		log.Printf("initial probe incomplete (will keep probing): %v", err)
	}
	for _, m := range g.Models() {
		if m.Available {
			log.Printf("routing %q: %d shard(s) across %d worker(s)", m.Name, m.Shards, len(urls))
		} else {
			log.Printf("model %q unavailable: %s", m.Name, m.Problem)
		}
	}
	g.Start()

	if err := serveHTTP(o.listen, g.Handler(), o.drain, g.Close); err != nil {
		log.Fatal(err)
	}
}

type server struct {
	svc     *copse.Service
	timeout time.Duration
	shuffle bool
}

type classifyRequest struct {
	Model   string     `json:"model"`
	Queries [][]uint64 `json:"queries"`
}

type classifyResult struct {
	Label     int    `json:"label"`
	LabelName string `json:"labelName,omitempty"`
	Votes     []int  `json:"votes"`
	// PerTree is omitted on shuffled responses: the shuffle hides tree
	// boundaries by design, only vote counts survive.
	PerTree []int `json:"perTree,omitempty"`
	// Codebook is the query's shuffled decoding table (shuffled
	// responses only): slot i of the permuted result votes for label
	// Codebook[i].
	Codebook []int `json:"codebook,omitempty"`
	// NumTrees accompanies a codebook so the client can sanity-check the
	// vote total.
	NumTrees int `json:"numTrees,omitempty"`
}

type classifyResponse struct {
	Model     string           `json:"model"`
	Shuffled  bool             `json:"shuffled,omitempty"`
	Results   []classifyResult `json:"results"`
	Passes    int              `json:"passes"`
	LatencyMS float64          `json:"latencyMS"`
}

// maxRequestBytes bounds a classify request body (~hundreds of
// thousands of queries); larger posts get a 400 instead of exhausting
// the process that holds the key set.
const maxRequestBytes = 8 << 20

func (s *server) classify(w http.ResponseWriter, r *http.Request) {
	var req classifyRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request: %w", err))
		return
	}
	if req.Model == "" || len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("need model and at least one query"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()

	capacity, err := s.svc.BatchCapacity(req.Model)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	meta, err := s.svc.Meta(req.Model)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	// Validate query shapes up front so malformed client input is a 400,
	// not a 500 from deep inside the encryption path.
	limit := uint64(1) << uint(meta.Precision)
	for i, q := range req.Queries {
		if len(q) != meta.NumFeatures {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("query %d has %d features, model %q wants %d", i, len(q), req.Model, meta.NumFeatures))
			return
		}
		for j, v := range q {
			if v >= limit {
				httpError(w, http.StatusBadRequest,
					fmt.Errorf("query %d feature %d value %d exceeds %d-bit precision", i, j, v, meta.Precision))
				return
			}
		}
	}
	start := time.Now()
	var results []*copse.Result
	var codebooks []*copse.ShuffledCodebook
	if s.shuffle {
		results, codebooks, err = s.svc.ClassifyBatchShuffled(ctx, req.Model, req.Queries)
	} else {
		results, err = s.svc.ClassifyBatch(ctx, req.Model, req.Queries)
	}
	if err != nil {
		// Failure-taxonomy mapping (DESIGN.md §15): typed serving errors
		// carry their own status so clients can tell shed load (back off
		// and retry) from timeouts and genuine faults.
		var oe *copse.OverloadError
		var de *copse.DeadlineError
		status := http.StatusInternalServerError
		switch {
		case errors.As(err, &oe):
			status = http.StatusTooManyRequests
			if oe.RetryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(int(max(1, oe.RetryAfter/time.Second))))
			}
		case errors.As(err, &de), ctx.Err() != nil:
			status = http.StatusGatewayTimeout
		}
		httpError(w, status, err)
		return
	}
	resp := classifyResponse{
		Model:     req.Model,
		Shuffled:  s.shuffle,
		Passes:    (len(req.Queries) + capacity - 1) / capacity,
		LatencyMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	for i, res := range results {
		cr := classifyResult{Label: res.Plurality(), Votes: res.Votes, PerTree: res.PerTree}
		if cr.Label < len(meta.LabelNames) {
			cr.LabelName = meta.LabelNames[cr.Label]
		}
		if codebooks != nil {
			cr.Codebook = codebooks[i].Slots
			cr.NumTrees = codebooks[i].NumTrees
		}
		resp.Results = append(resp.Results, cr)
	}
	writeJSON(w, resp)
}

type modelInfo struct {
	Name          string `json:"name"`
	Shape         string `json:"shape"`
	NumFeatures   int    `json:"numFeatures"`
	Precision     int    `json:"precision"`
	BatchCapacity int    `json:"batchCapacity"`
}

func (s *server) models(w http.ResponseWriter, _ *http.Request) {
	var out []modelInfo
	for _, name := range s.svc.Models() {
		meta, err := s.svc.Meta(name)
		if err != nil {
			continue
		}
		capacity, _ := s.svc.BatchCapacity(name)
		out = append(out, modelInfo{
			Name:          name,
			Shape:         meta.String(),
			NumFeatures:   meta.NumFeatures,
			Precision:     meta.Precision,
			BatchCapacity: capacity,
		})
	}
	writeJSON(w, out)
}

type statsResponse struct {
	Requests        int64   `json:"requests"`
	Queries         int64   `json:"queries"`
	Failures        int64   `json:"failures"`
	InFlight        int64   `json:"inFlight"`
	Queued          int64   `json:"queued"`
	MeanLatencyMS   float64 `json:"meanLatencyMS"`
	MeanQueueWaitMS float64 `json:"meanQueueWaitMS"`
	// Resilience counters (DESIGN.md §15).
	Shed            int64 `json:"shed"`
	DeadlineRejects int64 `json:"deadlineRejects"`
	PanicsRecovered int64 `json:"panicsRecovered"`
	// Dynamic batcher counters (zero unless -batchwindow is set).
	BatcherPasses    int64   `json:"batcherPasses"`
	CoalescedQueries int64   `json:"coalescedQueries"`
	BatchFill        float64 `json:"batchFill"`
	MeanBatchWaitMS  float64 `json:"meanBatchWaitMS"`
	// Per-model latency quantiles from the fixed log-spaced histograms.
	ModelLatency map[string]modelLatency `json:"modelLatency,omitempty"`
}

type modelLatency struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50MS"`
	P95MS float64 `json:"p95MS"`
	P99MS float64 `json:"p99MS"`
}

func (s *server) stats(w http.ResponseWriter, _ *http.Request) {
	st := s.svc.Stats()
	resp := statsResponse{
		Requests:         st.Requests,
		Queries:          st.Queries,
		Failures:         st.Failures,
		InFlight:         st.InFlight,
		Queued:           st.Queued,
		MeanLatencyMS:    float64(st.MeanLatency().Microseconds()) / 1000,
		MeanQueueWaitMS:  float64(st.MeanQueueWait().Microseconds()) / 1000,
		Shed:             st.Shed,
		DeadlineRejects:  st.DeadlineRejects,
		PanicsRecovered:  st.PanicsRecovered,
		BatcherPasses:    st.BatcherPasses,
		CoalescedQueries: st.CoalescedQueries,
		BatchFill:        st.BatchFill,
		MeanBatchWaitMS:  float64(st.MeanBatchWait().Microseconds()) / 1000,
	}
	if len(st.ModelLatency) > 0 {
		resp.ModelLatency = make(map[string]modelLatency, len(st.ModelLatency))
		for name, ml := range st.ModelLatency {
			resp.ModelLatency[name] = modelLatency{
				Count: ml.Count,
				P50MS: float64(ml.P50.Microseconds()) / 1000,
				P95MS: float64(ml.P95.Microseconds()) / 1000,
				P99MS: float64(ml.P99.Microseconds()) / 1000,
			}
		}
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("write response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
