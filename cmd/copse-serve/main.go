// Command copse-serve runs a copse.Service behind an HTTP/JSON API: it
// loads one or more compiled model artifacts onto a shared backend and
// answers classification batches concurrently, slot-packing each
// request's queries into as few homomorphic passes as possible.
//
// Usage:
//
//	copse-serve -listen :8080 -model fraud=fraud.copse -model churn=churn.copse
//	copse-serve -listen :8080 -model m=income5.copse -backend clear -workers 8
//	copse-serve -listen :8080 -model m=income5.copse -batchwindow 20ms
//
// With -batchwindow, concurrent requests for the same model coalesce
// into shared slot-packed homomorphic passes (the dynamic batcher):
// each request waits up to the window for co-riders, then one pass
// answers every rider's queries.
//
// Endpoints:
//
//	POST /v1/classify  {"model": "fraud", "queries": [[3,5,...], ...]}
//	  → {"model": "fraud", "results": [{"label": ..., "labelName": ...,
//	     "votes": [...], "perTree": [...]}, ...], "latencyMS": ...}
//	GET  /v1/models    → per-model shape and batch capacity
//	GET  /v1/stats     → request/query counters, mean latency, queue wait
//	GET  /healthz      → 200 once serving
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"copse"
)

type modelFlags map[string]string

func (m modelFlags) String() string { return fmt.Sprint(map[string]string(m)) }

func (m modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want NAME=ARTIFACT, got %q", v)
	}
	if _, dup := m[name]; dup {
		return fmt.Errorf("model %q given twice", name)
	}
	m[name] = path
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("copse-serve: ")

	models := modelFlags{}
	flag.Var(models, "model", "NAME=ARTIFACT to serve (repeatable)")
	listen := flag.String("listen", ":8080", "listen address")
	backendArg := flag.String("backend", "bgv", "bgv or clear")
	scenarioArg := flag.String("scenario", "offload", "offload, servermodel, or clienteval")
	workers := flag.Int("workers", 0, "intra-query parallelism (0 = GOMAXPROCS)")
	intraOp := flag.Int("intraop", 0, "ring-layer limb workers per op (0 = core budget, 1 = serial)")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent classification cap (0 = unlimited)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request classification timeout")
	seed := flag.Uint64("seed", 0, "deterministic keys/encryption when non-zero (tests only: with -shuffle it also makes every shuffle permutation predictable to anyone who knows the seed, voiding the leakage hardening)")
	shuffle := flag.Bool("shuffle", false, "shuffle results (leakage hardening, §7.2.2): responses carry per-query codebooks and vote counts instead of per-tree labels; BGV models need CompileOptions.PlanShuffle")
	batchWindow := flag.Duration("batchwindow", 0, "dynamic batching linger: concurrent requests for the same model coalesce into shared slot-packed passes, waiting up to this long for co-riders (0 = off)")
	batchMax := flag.Int("batchmax", 0, "queries per coalesced pass cap (0 = model batch capacity; needs -batchwindow)")
	batchMinFill := flag.Int("batchminfill", 0, "fire a coalesced pass early once this many queries are pending (0 = only at capacity or linger expiry; needs -batchwindow)")
	flag.Parse()

	if len(models) == 0 {
		log.Fatal("need at least one -model NAME=ARTIFACT")
	}

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	opts := []copse.Option{
		copse.WithWorkers(*workers),
		copse.WithIntraOpWorkers(*intraOp),
		copse.WithMaxInFlight(*maxInFlight),
		copse.WithSeed(*seed),
		copse.WithShuffle(*shuffle),
		copse.WithBatchPolicy(copse.BatchPolicy{
			Window:   *batchWindow,
			MaxBatch: *batchMax,
			MinFill:  *batchMinFill,
		}),
	}
	kind, err := copse.ParseBackend(*backendArg)
	if err != nil {
		log.Fatal(err)
	}
	scenario, err := copse.ParseScenario(*scenarioArg)
	if err != nil {
		log.Fatal(err)
	}
	opts = append(opts, copse.WithBackend(kind), copse.WithScenario(scenario))

	// Load every artifact first: the security preset (and so the shared
	// key set) is fixed by the models' common slot count before the
	// service is built.
	names := make([]string, 0, len(models))
	compiled := map[string]*copse.Compiled{}
	for name, path := range models {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		c, err := copse.ReadArtifact(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		names = append(names, name)
		compiled[name] = c
	}
	// Register order: deepest chain requirement first — the first model
	// sizes the shared backend's modulus chain (its level plan, or the
	// reactive recommendation) and gets the exact Galois keys, so the
	// alphabetical tie-break must not hand that role to a shallow model.
	// Ties (and the non-BGV backends) stay name-sorted for determinism.
	chainOf := func(name string) int {
		m := &compiled[name].Meta
		if m.LevelPlan != nil {
			return min(m.LevelPlan.Levels, m.RecommendedLevels)
		}
		return m.RecommendedLevels
	}
	sort.Slice(names, func(i, j int) bool {
		if ci, cj := chainOf(names[i]), chainOf(names[j]); ci != cj {
			return ci > cj
		}
		return names[i] < names[j]
	})
	if *backendArg == "bgv" {
		preset, err := copse.SecurityForSlots(compiled[names[0]].Meta.Slots)
		if err != nil {
			log.Fatalf("%s: %v", names[0], err)
		}
		opts = append(opts, copse.WithSecurity(preset))
	}

	svc := copse.NewService(opts...)
	for _, name := range names {
		if err := svc.Register(name, compiled[name]); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		capacity, _ := svc.BatchCapacity(name)
		meta, _ := svc.Meta(name)
		log.Printf("serving %q: %s, batch capacity %d", name, meta, capacity)
	}

	if *batchWindow > 0 {
		log.Printf("dynamic batching on: linger %v, max %d, minfill %d", *batchWindow, *batchMax, *batchMinFill)
	}

	srv := &server{svc: svc, timeout: *timeout, shuffle: *shuffle}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", srv.classify)
	mux.HandleFunc("GET /v1/models", srv.models)
	mux.HandleFunc("GET /v1/stats", srv.stats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	log.Printf("listening on %s", *listen)
	log.Fatal(http.ListenAndServe(*listen, mux))
}

type server struct {
	svc     *copse.Service
	timeout time.Duration
	shuffle bool
}

type classifyRequest struct {
	Model   string     `json:"model"`
	Queries [][]uint64 `json:"queries"`
}

type classifyResult struct {
	Label     int    `json:"label"`
	LabelName string `json:"labelName,omitempty"`
	Votes     []int  `json:"votes"`
	// PerTree is omitted on shuffled responses: the shuffle hides tree
	// boundaries by design, only vote counts survive.
	PerTree []int `json:"perTree,omitempty"`
	// Codebook is the query's shuffled decoding table (shuffled
	// responses only): slot i of the permuted result votes for label
	// Codebook[i].
	Codebook []int `json:"codebook,omitempty"`
	// NumTrees accompanies a codebook so the client can sanity-check the
	// vote total.
	NumTrees int `json:"numTrees,omitempty"`
}

type classifyResponse struct {
	Model     string           `json:"model"`
	Shuffled  bool             `json:"shuffled,omitempty"`
	Results   []classifyResult `json:"results"`
	Passes    int              `json:"passes"`
	LatencyMS float64          `json:"latencyMS"`
}

// maxRequestBytes bounds a classify request body (~hundreds of
// thousands of queries); larger posts get a 400 instead of exhausting
// the process that holds the key set.
const maxRequestBytes = 8 << 20

func (s *server) classify(w http.ResponseWriter, r *http.Request) {
	var req classifyRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request: %w", err))
		return
	}
	if req.Model == "" || len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("need model and at least one query"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()

	capacity, err := s.svc.BatchCapacity(req.Model)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	meta, err := s.svc.Meta(req.Model)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	// Validate query shapes up front so malformed client input is a 400,
	// not a 500 from deep inside the encryption path.
	limit := uint64(1) << uint(meta.Precision)
	for i, q := range req.Queries {
		if len(q) != meta.NumFeatures {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("query %d has %d features, model %q wants %d", i, len(q), req.Model, meta.NumFeatures))
			return
		}
		for j, v := range q {
			if v >= limit {
				httpError(w, http.StatusBadRequest,
					fmt.Errorf("query %d feature %d value %d exceeds %d-bit precision", i, j, v, meta.Precision))
				return
			}
		}
	}
	start := time.Now()
	var results []*copse.Result
	var codebooks []*copse.ShuffledCodebook
	if s.shuffle {
		results, codebooks, err = s.svc.ClassifyBatchShuffled(ctx, req.Model, req.Queries)
	} else {
		results, err = s.svc.ClassifyBatch(ctx, req.Model, req.Queries)
	}
	if err != nil {
		status := http.StatusInternalServerError
		if ctx.Err() != nil {
			status = http.StatusGatewayTimeout
		}
		httpError(w, status, err)
		return
	}
	resp := classifyResponse{
		Model:     req.Model,
		Shuffled:  s.shuffle,
		Passes:    (len(req.Queries) + capacity - 1) / capacity,
		LatencyMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	for i, res := range results {
		cr := classifyResult{Label: res.Plurality(), Votes: res.Votes, PerTree: res.PerTree}
		if cr.Label < len(meta.LabelNames) {
			cr.LabelName = meta.LabelNames[cr.Label]
		}
		if codebooks != nil {
			cr.Codebook = codebooks[i].Slots
			cr.NumTrees = codebooks[i].NumTrees
		}
		resp.Results = append(resp.Results, cr)
	}
	writeJSON(w, resp)
}

type modelInfo struct {
	Name          string `json:"name"`
	Shape         string `json:"shape"`
	NumFeatures   int    `json:"numFeatures"`
	Precision     int    `json:"precision"`
	BatchCapacity int    `json:"batchCapacity"`
}

func (s *server) models(w http.ResponseWriter, _ *http.Request) {
	var out []modelInfo
	for _, name := range s.svc.Models() {
		meta, err := s.svc.Meta(name)
		if err != nil {
			continue
		}
		capacity, _ := s.svc.BatchCapacity(name)
		out = append(out, modelInfo{
			Name:          name,
			Shape:         meta.String(),
			NumFeatures:   meta.NumFeatures,
			Precision:     meta.Precision,
			BatchCapacity: capacity,
		})
	}
	writeJSON(w, out)
}

type statsResponse struct {
	Requests        int64   `json:"requests"`
	Queries         int64   `json:"queries"`
	Failures        int64   `json:"failures"`
	InFlight        int64   `json:"inFlight"`
	MeanLatencyMS   float64 `json:"meanLatencyMS"`
	MeanQueueWaitMS float64 `json:"meanQueueWaitMS"`
	// Dynamic batcher counters (zero unless -batchwindow is set).
	BatcherPasses    int64   `json:"batcherPasses"`
	CoalescedQueries int64   `json:"coalescedQueries"`
	BatchFill        float64 `json:"batchFill"`
	MeanBatchWaitMS  float64 `json:"meanBatchWaitMS"`
}

func (s *server) stats(w http.ResponseWriter, _ *http.Request) {
	st := s.svc.Stats()
	writeJSON(w, statsResponse{
		Requests:         st.Requests,
		Queries:          st.Queries,
		Failures:         st.Failures,
		InFlight:         st.InFlight,
		MeanLatencyMS:    float64(st.MeanLatency().Microseconds()) / 1000,
		MeanQueueWaitMS:  float64(st.MeanQueueWait().Microseconds()) / 1000,
		BatcherPasses:    st.BatcherPasses,
		CoalescedQueries: st.CoalescedQueries,
		BatchFill:        st.BatchFill,
		MeanBatchWaitMS:  float64(st.MeanBatchWait().Microseconds()) / 1000,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("write response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
