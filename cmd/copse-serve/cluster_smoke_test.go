package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"

	"copse"
	"copse/internal/synth"
)

// TestClusterSmoke is the multi-process cluster smoke: it builds the
// copse-serve binary, shards a compiled forest two ways, spawns two
// worker processes plus a gateway on loopback, and checks that a
// sharded BGV classify through real HTTP agrees with plain forest
// evaluation. It then kills one worker (routing degrades within a
// probe interval) and SIGTERMs the survivors (graceful shutdown exits
// cleanly).
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster smoke in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "copse-serve")
	build := exec.Command("go", "build", "-o", bin, "copse/cmd/copse-serve")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Compile and shard the forest in-process; the worker processes only
	// ever see the artifacts, like a real deployment.
	forest, err := synth.Generate(synth.ForestSpec{
		NumFeatures:     3,
		NumLabels:       3,
		Precision:       4,
		MaxDepth:        3,
		BranchesPerTree: []int{5, 3, 6, 3, 4},
		Seed:            51,
	})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := copse.Compile(forest, copse.CompileOptions{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	shards, manifest, err := copse.ShardForest(compiled, 2)
	if err != nil {
		t.Fatal(err)
	}
	manifestPath := filepath.Join(dir, "forest.manifest.json")
	writeFile(t, manifestPath, func(w io.Writer) error { return copse.WriteManifest(w, manifest) })
	shardPaths := make([]string, len(shards))
	for i, s := range shards {
		shardPaths[i] = filepath.Join(dir, fmt.Sprintf("forest.shard%d.copse", i))
		s := s
		writeFile(t, shardPaths[i], func(w io.Writer) error { return copse.WriteArtifact(w, s) })
	}

	ports := []int{freePort(t), freePort(t), freePort(t)}
	workerURL := func(i int) string { return fmt.Sprintf("http://127.0.0.1:%d", ports[i]) }

	procs := make([]*exec.Cmd, 0, 3)
	for i := 0; i < 2; i++ {
		procs = append(procs, startProc(t, bin,
			"-worker",
			"-listen", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-seed", "42",
			"-manifest", "forest="+manifestPath,
			"-shards", "forest="+shardPaths[i],
			"-max-inflight", "2",
			"-shedqueue", "64",
		))
	}
	for i := 0; i < 2; i++ {
		waitHTTP(t, workerURL(i)+"/healthz", 90*time.Second)
	}
	gw := startProc(t, bin,
		"-gateway",
		"-listen", fmt.Sprintf("127.0.0.1:%d", ports[2]),
		"-workers", workerURL(0)+","+workerURL(1),
		"-probe", "200ms",
		"-breaker", "3",
		"-retries", "2",
	)
	procs = append(procs, gw)
	gwURL := fmt.Sprintf("http://127.0.0.1:%d", ports[2])
	waitHTTP(t, gwURL+"/healthz", 30*time.Second)
	waitModel(t, gwURL, "forest", true, 30*time.Second)

	// A sharded classify through the gateway matches plain evaluation.
	queries := [][]uint64{{3, 9, 1}, {15, 0, 7}}
	body, _ := json.Marshal(map[string]any{"model": "forest", "queries": queries})
	resp, err := http.Post(gwURL+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify: HTTP %d: %s", resp.StatusCode, raw)
	}
	var cr struct {
		Results []struct {
			Label   int   `json:"label"`
			PerTree []int `json:"perTree"`
		} `json:"results"`
		Shards int `json:"shards"`
	}
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatalf("classify response: %v\n%s", err, raw)
	}
	if cr.Shards != 2 || len(cr.Results) != len(queries) {
		t.Fatalf("classify fanned to %d shards with %d results: %s", cr.Shards, len(cr.Results), raw)
	}
	for i, q := range queries {
		want := forest.Classify(q)
		if !reflect.DeepEqual(cr.Results[i].PerTree, want) {
			t.Errorf("query %d: gateway perTree %v, plain eval %v", i, cr.Results[i].PerTree, want)
		}
	}

	// Kill worker 1 outright: the gateway must mark the model
	// unavailable within a couple of probe intervals.
	procs[1].Process.Kill()
	procs[1].Wait()
	waitModel(t, gwURL, "forest", false, 15*time.Second)

	// SIGTERM the survivors: graceful shutdown must exit 0.
	for _, p := range []*exec.Cmd{gw, procs[0]} {
		p.Process.Signal(syscall.SIGTERM)
	}
	for _, p := range []*exec.Cmd{gw, procs[0]} {
		if err := waitProc(p, 30*time.Second); err != nil {
			t.Errorf("graceful shutdown: %v", err)
		}
	}
}

func writeFile(t *testing.T, path string, fill func(io.Writer) error) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	err = fill(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
}

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

func startProc(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
		if t.Failed() {
			t.Logf("%s %v output:\n%s", filepath.Base(bin), args[0], out.String())
		}
	})
	return cmd
}

func waitProc(cmd *exec.Cmd, timeout time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		cmd.Process.Kill()
		return fmt.Errorf("pid %d still running after %v", cmd.Process.Pid, timeout)
	}
}

func waitHTTP(t *testing.T, url string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s not ready after %v", url, timeout)
}

// waitModel polls the gateway model list until the named model's
// availability matches want.
func waitModel(t *testing.T, gwURL, model string, want bool, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(gwURL + "/v1/models")
		if err == nil {
			var models []struct {
				Name      string `json:"name"`
				Available bool   `json:"available"`
			}
			err = json.NewDecoder(resp.Body).Decode(&models)
			resp.Body.Close()
			if err == nil {
				for _, m := range models {
					if m.Name == model && m.Available == want {
						return
					}
				}
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("model %q never became available=%v within %v", model, want, timeout)
}
