// Command copse-bench regenerates the paper's evaluation: every table
// and figure of §8, using the shared harness in internal/experiments.
//
// Usage:
//
//	copse-bench -exp all                      # everything, clear backend
//	copse-bench -exp fig6 -queries 27
//	copse-bench -exp fig10a -backend bgv      # real ciphertexts (slow)
//	copse-bench -exp table6 -servejson BENCH_serving.json   # serving throughput
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"copse/internal/experiments"
	"copse/internal/ring"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("copse-bench: ")

	exp := flag.String("exp", "all", "experiment id: table1,table2,table3,table4,table5,table6,fig6,fig7,fig8,fig9,fig10a,fig10b,fig10c,ablation or all")
	backend := flag.String("backend", "clear", "clear or bgv")
	queries := flag.Int("queries", 27, "queries per model (paper: 27 medians)")
	workers := flag.Int("workers", 0, "threads for multithreaded runs (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 1, "harness seed")
	scale := flag.Float64("scale", 1, "real-world model scale (shrink for quick runs)")
	opcase := flag.String("opcase", "width78", "model used for table1/table2 op counts")
	models := flag.String("models", "", "comma-separated model filter (default: all)")
	rotJSON := flag.String("rotjson", "", "also write machine-readable stage timings + op counts to this file (e.g. BENCH_rotations.json)")
	serveJSON := flag.String("servejson", "", "also write serving throughput (queries/sec at batch sizes 1, 4, max) to this file (e.g. BENCH_serving.json)")
	levelJSON := flag.String("leveljson", "", "also write the level-scheduling record (per-stage limbs + limb-op integrals, planned vs -nolevelplan, BGV backend) to this file (e.g. BENCH_levels.json)")
	noLevelPlan := flag.Bool("nolevelplan", false, "disable static level scheduling (reactive noise management; the DESIGN.md §8 ablation)")
	nttJSON := flag.String("nttjson", "", "also write the intra-op parallelism record (serial vs fused vs limb-parallel ring kernels, classify ablation, Galois-key budget) to this file (e.g. BENCH_ntt.json)")
	shuffleJSON := flag.String("shufflejson", "", "also write the result-shuffle record (per-query shuffle cost at B=1 vs one batched pass at B=max, clear and BGV backends, rotation budget) to this file (e.g. BENCH_shuffle.json)")
	aggJSON := flag.String("aggjson", "", "also write the dynamic-batching record (closed-loop 16-client throughput, batcher on vs off, clear plus BGV with -backend bgv) to this file (e.g. BENCH_agg.json)")
	clusterJSON := flag.String("clusterjson", "", "also write the sharded-serving record (2-worker gateway/worker cluster over loopback HTTP vs single node, bit-identity witness plus fan-out/merge overhead, BGV) to this file (e.g. BENCH_cluster.json)")
	genJSON := flag.String("genjson", "", "also write the kernel-specialization record (specialized op-program executor vs generic interpreter, bit-identity asserted, plus one compiled-and-run generated kernel) to this file (e.g. BENCH_gen.json)")
	noSpecialize := flag.Bool("nospecialize", false, "disable the specialized op-program executor (re-derive the pipeline from model structure per classify; the DESIGN.md §13 ablation)")
	intraOp := flag.Int("intraop", 0, "ring-layer limb workers for BGV runs (default/1 = serial so ablation baselines stay single-threaded; n >= 2 enables the pool)")
	secure128 := flag.Bool("secure128", false, "with -nttjson: also run the offline Security128 (N=32768) end-to-end classify (slow)")
	noVec := flag.Bool("novec", false, "disable the ring layer's vectorized (SIMD) kernels for every run in this process — the scalar-kernel ablation (results are bit-identical either way)")
	flag.Parse()

	if *noVec {
		ring.SetVectorKernels(false)
	}

	cfg := experiments.Config{
		Backend:        *backend,
		Queries:        *queries,
		Workers:        *workers,
		IntraOp:        *intraOp,
		Seed:           *seed,
		RealWorldScale: *scale,
		NoLevelPlan:    *noLevelPlan,
		NoSpecialize:   *noSpecialize,
	}
	if *models != "" {
		cfg.Models = strings.Split(*models, ",")
	}

	runners := map[string]func() (*experiments.Table, error){
		"table1":   func() (*experiments.Table, error) { return experiments.Table1(cfg, *opcase) },
		"table2":   func() (*experiments.Table, error) { return experiments.Table2(cfg, *opcase) },
		"table3":   func() (*experiments.Table, error) { return experiments.Table3(), nil },
		"table4":   func() (*experiments.Table, error) { return experiments.Table4(), nil },
		"table5":   func() (*experiments.Table, error) { return experiments.Table5(cfg) },
		"table6":   func() (*experiments.Table, error) { return experiments.Table6() },
		"fig6":     func() (*experiments.Table, error) { return experiments.Fig6(cfg) },
		"fig7":     func() (*experiments.Table, error) { return experiments.Fig7(cfg) },
		"fig8":     func() (*experiments.Table, error) { return experiments.Fig8(cfg) },
		"fig9":     func() (*experiments.Table, error) { return experiments.Fig9(cfg) },
		"fig10a":   func() (*experiments.Table, error) { return experiments.Fig10(cfg, "a") },
		"fig10b":   func() (*experiments.Table, error) { return experiments.Fig10(cfg, "b") },
		"fig10c":   func() (*experiments.Table, error) { return experiments.Fig10(cfg, "c") },
		"ablation": func() (*experiments.Table, error) { return experiments.Ablation(cfg) },
	}
	order := []string{
		"table6", "table3", "table4", "table1", "table2", "table5",
		"fig6", "fig7", "fig8", "fig9", "fig10a", "fig10b", "fig10c", "ablation",
	}

	var ids []string
	if *exp == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if _, ok := runners[id]; !ok {
				log.Fatalf("unknown experiment %q (have: %s, all)", id, strings.Join(order, ", "))
			}
			ids = append(ids, id)
		}
	}

	fmt.Printf("COPSE reproduction harness: backend=%s queries=%d seed=%d scale=%g\n\n",
		cfg.Backend, cfg.Queries, cfg.Seed, *scale)
	for _, id := range ids {
		start := time.Now()
		tbl, err := runners[id]()
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		if err := tbl.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *rotJSON != "" {
		report, err := experiments.RotationReport(cfg)
		if err != nil {
			log.Fatalf("rotation report: %v", err)
		}
		f, err := os.Create(*rotJSON)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *rotJSON)
	}

	if *serveJSON != "" {
		report, err := experiments.ServingReport(cfg)
		if err != nil {
			log.Fatalf("serving report: %v", err)
		}
		f, err := os.Create(*serveJSON)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *serveJSON)
	}

	if *levelJSON != "" {
		report, err := experiments.LevelReport(cfg)
		if err != nil {
			log.Fatalf("level report: %v", err)
		}
		f, err := os.Create(*levelJSON)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *levelJSON)
	}

	if *shuffleJSON != "" {
		report, err := experiments.ShuffleReport(cfg)
		if err != nil {
			log.Fatalf("shuffle report: %v", err)
		}
		f, err := os.Create(*shuffleJSON)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *shuffleJSON)
	}

	if *aggJSON != "" {
		report, err := experiments.AggReport(cfg)
		if err != nil {
			log.Fatalf("agg report: %v", err)
		}
		f, err := os.Create(*aggJSON)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *aggJSON)
	}

	if *clusterJSON != "" {
		report, err := experiments.ClusterReport(cfg)
		if err != nil {
			log.Fatalf("cluster report: %v", err)
		}
		f, err := os.Create(*clusterJSON)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *clusterJSON)
	}

	if *genJSON != "" {
		report, err := experiments.GenReport(cfg)
		if err != nil {
			log.Fatalf("gen report: %v", err)
		}
		f, err := os.Create(*genJSON)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *genJSON)
	}

	if *nttJSON != "" {
		report, err := experiments.NTTReport(cfg, *intraOp, *secure128)
		if err != nil {
			log.Fatalf("ntt report: %v", err)
		}
		if report.WorkersExceedCPUs {
			log.Printf("warning: %d limb workers on a %d-CPU host — the parallel columns measure oversubscription, not speedup", report.Workers, report.CPUs)
		}
		f, err := os.Create(*nttJSON)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *nttJSON)
	}
}
