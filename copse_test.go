package copse_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"copse"
	"copse/internal/synth"
)

func compileExample(t *testing.T, slots int) *copse.Compiled {
	t.Helper()
	c, err := copse.Compile(copse.ExampleForest(), copse.CompileOptions{Slots: slots})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

// classifyVia runs one query through the public three-party workflow.
func classifyVia(t *testing.T, sys *copse.System, feats []uint64) *copse.Result {
	t.Helper()
	q, err := sys.Diane.EncryptQuery(feats)
	if err != nil {
		t.Fatalf("EncryptQuery: %v", err)
	}
	enc, trace, err := sys.Sally.Classify(q)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	if trace.Total <= 0 {
		t.Error("trace has no total time")
	}
	res, err := sys.Diane.DecryptResult(enc)
	if err != nil {
		t.Fatalf("DecryptResult: %v", err)
	}
	return res
}

// TestEndToEndAllScenariosClear drives every party configuration through
// the public API on the clear backend.
func TestEndToEndAllScenariosClear(t *testing.T) {
	forest := copse.ExampleForest()
	c := compileExample(t, 64)
	scenarios := []copse.Scenario{
		copse.ScenarioOffload, copse.ScenarioServerModel, copse.ScenarioClientEval,
		copse.ScenarioThreeParty,
	}
	for _, sc := range scenarios {
		sys, err := copse.NewSystem(c, copse.SystemConfig{
			Backend: copse.BackendClear, Scenario: sc, Workers: 4,
		})
		if err != nil {
			t.Fatalf("scenario %d: %v", sc, err)
		}
		for _, feats := range [][]uint64{{0, 5}, {7, 0}, {15, 15}} {
			want := forest.Classify(feats)
			res := classifyVia(t, sys, feats)
			if res.PerTree[0] != want[0] {
				t.Errorf("scenario %d Classify(%v) = L%d, want L%d", sc, feats, res.PerTree[0], want[0])
			}
		}
	}
}

// TestEndToEndBGV is the flagship integration test: full workflow on
// real BGV ciphertexts through the public API.
func TestEndToEndBGV(t *testing.T) {
	forest := copse.ExampleForest()
	c := compileExample(t, 1024)
	sys, err := copse.NewSystem(c, copse.SystemConfig{
		Backend:  copse.BackendBGV,
		Scenario: copse.ScenarioOffload,
		Security: copse.SecurityTest,
		Workers:  4,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, feats := range [][]uint64{{0, 5}, {6, 2}} {
		want := forest.Classify(feats)
		res := classifyVia(t, sys, feats)
		if res.PerTree[0] != want[0] {
			t.Errorf("Classify(%v) = L%d, want L%d", feats, res.PerTree[0], want[0])
		}
	}
	// Sally's structural view must match the leakage model.
	view := sys.Sally.ServerView()
	if view.QPad != c.Meta.QPad || view.D != c.Meta.D {
		t.Errorf("server view %+v inconsistent with meta %s", view, c.Meta.String())
	}
}

func TestSystemConfigErrors(t *testing.T) {
	c := compileExample(t, 64)
	if _, err := copse.NewSystem(c, copse.SystemConfig{Backend: copse.BackendKind(99)}); err == nil {
		t.Error("bogus backend accepted")
	}
	// Slot mismatch: staged for 64, BGV test preset provides 1024.
	if _, err := copse.NewSystem(c, copse.SystemConfig{Backend: copse.BackendBGV}); err == nil {
		t.Error("slot mismatch accepted")
	}
	if _, err := copse.NewSystem(c, copse.SystemConfig{
		Backend: copse.BackendClear, Scenario: copse.Scenario(99),
	}); err == nil {
		t.Error("bogus scenario accepted")
	}
}

// TestTrainCompileClassify is the full ML pipeline: synthetic dataset →
// trained forest → compiled model → secure inference matching plaintext
// prediction.
func TestTrainCompileClassify(t *testing.T) {
	ds := synth.Income(600, 3)
	tm, err := copse.Train(ds.X, ds.Y, ds.Labels, copse.TrainConfig{
		NumTrees: 3, MaxDepth: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := copse.Compile(tm.Forest, copse.CompileOptions{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := copse.NewSystem(c, copse.SystemConfig{
		Backend: copse.BackendClear, Scenario: copse.ScenarioOffload, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		q, err := tm.QuantizeFeatures(ds.X[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := tm.Predict(ds.X[i])
		if err != nil {
			t.Fatal(err)
		}
		res := classifyVia(t, sys, q)
		if got := res.Plurality(); got != want {
			t.Errorf("row %d: secure plurality %d, plaintext %d", i, got, want)
		}
	}
}

func TestModelSerializationPublicAPI(t *testing.T) {
	f := copse.ExampleForest()
	var buf bytes.Buffer
	if err := copse.FormatModel(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := copse.ParseModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Classify([]uint64{0, 5})[0] != 4 {
		t.Error("round-tripped model misclassifies")
	}
	if _, err := copse.ParseModelString("garbage"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestArtifactPublicAPI(t *testing.T) {
	c := compileExample(t, 64)
	var buf bytes.Buffer
	if err := copse.WriteArtifact(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := copse.ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta.B != c.Meta.B {
		t.Error("artifact round trip changed meta")
	}
}

func TestLeakagePublicAPI(t *testing.T) {
	l := copse.Revealed(copse.ScenarioOffload, copse.PartyServer)
	if !l.Q || !l.B || !l.D || l.K || l.Everything {
		t.Errorf("offload server leakage: %+v", l)
	}
}

// TestGeneratedProgramBuildsAndRuns compiles the staging compiler's
// generated Go program in a scratch module and executes an inference
// with it — the full §5 story.
func TestGeneratedProgramBuildsAndRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a generated program")
	}
	repoRoot, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	c := compileExample(t, 64)
	dir := t.TempDir()
	var src bytes.Buffer
	if err := copse.GenerateProgram(&src, c); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), src.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	gomod := "module generated\n\ngo 1.23\n\nrequire copse v0.0.0\n\nreplace copse => " + repoRoot + "\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	tidy := exec.Command("go", "mod", "tidy")
	tidy.Dir = dir
	tidy.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GOPROXY=off")
	if out, err := tidy.CombinedOutput(); err != nil {
		t.Fatalf("go mod tidy: %v\n%s", err, out)
	}
	run := exec.Command("go", "run", ".", "-features", "0,5", "-backend", "clear")
	run.Dir = dir
	run.Env = append(os.Environ(), "GOPROXY=off")
	out, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("go run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "plurality: L4") {
		t.Errorf("generated program output:\n%s", out)
	}
}
