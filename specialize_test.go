package copse_test

import (
	"context"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"copse"
	"copse/internal/synth"
)

// specializeScenarios is the full party-configuration corpus; encFeats
// (per scenarioEncryption) decides whether the specialized op-program
// executor can dispatch — a plaintext query (clienteval) stays on the
// generic interpreter by design.
var specializeScenarios = []struct {
	name     string
	scenario copse.Scenario
	encFeats bool
}{
	{"offload", copse.ScenarioOffload, true},
	{"servermodel", copse.ScenarioServerModel, true},
	{"clienteval", copse.ScenarioClientEval, false},
	{"threeparty", copse.ScenarioThreeParty, true},
	{"colludesm", copse.ScenarioColludeSM, true},
	{"colludesd", copse.ScenarioColludeSD, true},
}

func specializeBatch(f *copse.Forest, n int, seed uint64) [][]uint64 {
	rng := rand.New(rand.NewPCG(seed, 0xfeed))
	batch := make([][]uint64, n)
	for i := range batch {
		batch[i] = make([]uint64, f.NumFeatures)
		for j := range batch[i] {
			batch[i][j] = rng.Uint64N(1 << uint(f.Precision))
		}
	}
	return batch
}

func specializeService(t *testing.T, c *copse.Compiled, kind copse.BackendKind, sc copse.Scenario, shuffled, generic bool) *copse.Service {
	t.Helper()
	svc := copse.NewService(
		copse.WithBackend(kind),
		copse.WithScenario(sc),
		copse.WithSeed(11),
		copse.WithShuffle(shuffled),
		copse.WithSpecialization(!generic),
	)
	if err := svc.Register("m", c); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	return svc
}

// TestSpecializedBitIdentityClear: across every scenario, batch sizes
// B=1 and B=capacity, shuffled and not, the specialized executor and
// the generic interpreter decrypt to identical results (and both match
// the plaintext tree walk). The traces additionally witness which
// executor actually ran.
func TestSpecializedBitIdentityClear(t *testing.T) {
	f := copse.ExampleForest()
	c := compileExample(t, 64)
	for _, sc := range specializeScenarios {
		for _, shuffled := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/shuffle=%v", sc.name, shuffled), func(t *testing.T) {
				spec := specializeService(t, c, copse.BackendClear, sc.scenario, shuffled, false)
				gen := specializeService(t, c, copse.BackendClear, sc.scenario, shuffled, true)
				capacity, err := spec.BatchCapacity("m")
				if err != nil {
					t.Fatal(err)
				}
				for _, b := range []int{1, capacity} {
					batch := specializeBatch(f, b, uint64(b))
					if shuffled {
						rs, _, err := spec.ClassifyBatchShuffled(context.Background(), "m", batch)
						if err != nil {
							t.Fatal(err)
						}
						rg, _, err := gen.ClassifyBatchShuffled(context.Background(), "m", batch)
						if err != nil {
							t.Fatal(err)
						}
						for qi := range batch {
							for lbl := range rs[qi].Votes {
								if rs[qi].Votes[lbl] != rg[qi].Votes[lbl] {
									t.Fatalf("B=%d query %d: specialized votes %v != generic %v",
										b, qi, rs[qi].Votes, rg[qi].Votes)
								}
							}
						}
						continue
					}
					compareSpecializedPass(t, spec, gen, f, batch, sc.encFeats)
				}
			})
		}
	}
}

// compareSpecializedPass runs one batch through both services on the
// trace-carrying path, asserting per-tree bit identity, agreement with
// the plaintext walk, and the expected executor on each leg.
func compareSpecializedPass(t *testing.T, spec, gen *copse.Service, f *copse.Forest, batch [][]uint64, wantSpecialized bool) {
	t.Helper()
	classify := func(svc *copse.Service) ([]*copse.Result, string) {
		q, err := svc.EncryptQueryBatch("m", batch)
		if err != nil {
			t.Fatal(err)
		}
		enc, trace, err := svc.Classify(context.Background(), "m", q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.DecryptResultBatch("m", enc)
		if err != nil {
			t.Fatal(err)
		}
		return res[:len(batch)], trace.Executor
	}
	rs, specExec := classify(spec)
	rg, genExec := classify(gen)
	if genExec != "generic" {
		t.Errorf("generic service ran executor %q", genExec)
	}
	wantExec := "generic"
	if wantSpecialized {
		wantExec = "program"
	}
	if specExec != wantExec {
		t.Errorf("specialized service ran executor %q, want %q", specExec, wantExec)
	}
	for qi, feats := range batch {
		want := f.Classify(feats)
		for ti := range want {
			if rs[qi].PerTree[ti] != want[ti] || rg[qi].PerTree[ti] != want[ti] {
				t.Fatalf("B=%d query %d tree %d: specialized %d, generic %d, plaintext %d",
					len(batch), qi, ti, rs[qi].PerTree[ti], rg[qi].PerTree[ti], want[ti])
			}
		}
	}
}

// TestSpecializedBitIdentityBGV repeats the identity check on real
// ciphertexts for the cipher-query scenarios, B=1 and B=capacity.
func TestSpecializedBitIdentityBGV(t *testing.T) {
	if testing.Short() {
		t.Skip("BGV bit-identity sweep is slow")
	}
	f := copse.ExampleForest()
	c := compileExample(t, 1024)
	for _, sc := range specializeScenarios {
		if sc.name != "offload" && sc.name != "servermodel" {
			continue
		}
		t.Run(sc.name, func(t *testing.T) {
			spec := specializeService(t, c, copse.BackendBGV, sc.scenario, false, false)
			gen := specializeService(t, c, copse.BackendBGV, sc.scenario, false, true)
			capacity, err := spec.BatchCapacity("m")
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range []int{1, capacity} {
				compareSpecializedPass(t, spec, gen, f, specializeBatch(f, b, uint64(b)), sc.encFeats)
			}
		})
	}
}

// TestSpecializedConcurrentClassify hammers one specialized service
// from many goroutines: the per-classify scratch pool and the
// parallel block segments must stay race-free and bit-exact. Part of
// the CI -race job's named list.
func TestSpecializedConcurrentClassify(t *testing.T) {
	f := copse.ExampleForest()
	c := compileExample(t, 64)
	svc := specializeService(t, c, copse.BackendClear, copse.ScenarioOffload, false, false)
	const goroutines = 8
	const perG = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				batch := specializeBatch(f, 1, uint64(g*perG+i))
				res, err := svc.ClassifyBatch(context.Background(), "m", batch)
				if err != nil {
					errs <- err
					return
				}
				want := f.Classify(batch[0])
				for ti := range want {
					if res[0].PerTree[ti] != want[ti] {
						errs <- fmt.Errorf("goroutine %d query %d tree %d: %d != %d",
							g, i, ti, res[0].PerTree[ti], want[ti])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSpecializePerfSmoke gates the tentpole speedup claim: on the
// depth4 microbenchmark over real BGV ciphertexts, the specialized
// op-program executor must beat the generic interpreter by ≥ 1.15×
// (BENCH_gen.json records the same margin). Gated behind
// COPSE_PERF_SMOKE=1 like the other wall-clock smokes.
func TestSpecializePerfSmoke(t *testing.T) {
	if os.Getenv("COPSE_PERF_SMOKE") == "" {
		t.Skip("set COPSE_PERF_SMOKE=1 to run the specialization perf smoke")
	}
	var forest *copse.Forest
	for _, mb := range synth.Microbenchmarks() {
		if mb.Name == "depth4" {
			f, err := synth.Generate(mb.Spec)
			if err != nil {
				t.Fatal(err)
			}
			forest = f
		}
	}
	if forest == nil {
		t.Fatal("no depth4 microbenchmark")
	}
	compiled, err := copse.Compile(forest, copse.CompileOptions{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	// Medians over several queries, not a mean over one round: shared
	// CI boxes add multi-hundred-ms noise spikes that a single slow
	// query would otherwise fold into the ratio.
	const queries = 5
	run := func(generic bool) time.Duration {
		sys, err := copse.NewSystem(compiled, copse.SystemConfig{
			Backend: copse.BackendBGV, Scenario: copse.ScenarioOffload,
			Security: copse.SecurityTest, Workers: runtime.GOMAXPROCS(0),
			DisableSpecialization: generic, Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Service().Close()
		query, err := sys.Diane.EncryptQuery([]uint64{3, 5})
		if err != nil {
			t.Fatal(err)
		}
		// One warm-up pass (pools, lift caches), then timed queries.
		if _, _, err := sys.Sally.Classify(query); err != nil {
			t.Fatal(err)
		}
		times := make([]time.Duration, queries)
		for i := 0; i < queries; i++ {
			start := time.Now()
			enc, _, err := sys.Sally.Classify(query)
			if err != nil {
				t.Fatal(err)
			}
			times[i] = time.Since(start)
			if _, err := sys.Diane.DecryptResult(enc); err != nil {
				t.Fatal(err)
			}
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[queries/2]
	}
	generic := run(true)
	specialized := run(false)
	ratio := float64(generic) / float64(specialized)
	t.Logf("generic %v, specialized %v (%.2fx)", generic, specialized, ratio)
	if ratio < 1.15 {
		t.Errorf("specialized executor %.2fx over generic, want >= 1.15x", ratio)
	}
}
