package copse_test

import (
	"os"
	"runtime"
	"testing"
	"time"

	"copse"
)

// TestLevelPlanPerfSmoke is the CI guardrail for static level
// scheduling: the scheduled BGV classify path must beat the reactive
// (-nolevelplan) one on the example model. It is a coarse A/B wall-clock
// check — the scheduled path runs a shorter modulus chain and ~2× fewer
// limb·ops, so a regression to parity means the plan stopped being
// applied. Gated behind COPSE_PERF_SMOKE=1 so ordinary test runs (and
// -race, where timing is meaningless) skip it.
func TestLevelPlanPerfSmoke(t *testing.T) {
	if os.Getenv("COPSE_PERF_SMOKE") == "" {
		t.Skip("set COPSE_PERF_SMOKE=1 to run the level-plan perf smoke")
	}
	forest := copse.ExampleForest()
	compiled, err := copse.Compile(forest, copse.CompileOptions{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	const queries = 3
	run := func(disablePlan bool) time.Duration {
		sys, err := copse.NewSystem(compiled, copse.SystemConfig{
			Backend: copse.BackendBGV, Scenario: copse.ScenarioOffload,
			Security: copse.SecurityTest, Workers: runtime.GOMAXPROCS(0),
			DisableLevelPlan: disablePlan, Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		query, err := sys.Diane.EncryptQuery([]uint64{3, 5})
		if err != nil {
			t.Fatal(err)
		}
		// One warm-up pass (pools, lift caches), then timed queries.
		if _, _, err := sys.Sally.Classify(query); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < queries; i++ {
			enc, _, err := sys.Sally.Classify(query)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Diane.DecryptResult(enc); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / queries
	}
	reactive := run(true)
	planned := run(false)
	t.Logf("planned %v/query vs reactive %v/query (%.2fx)", planned, reactive, float64(reactive)/float64(planned))
	if planned >= reactive {
		t.Fatalf("level-scheduled classify (%v) is not faster than reactive (%v)", planned, reactive)
	}
}
