package copse

import (
	"fmt"
	"time"
)

// This file is the serving-failure taxonomy (DESIGN.md §15): the typed
// errors the resilient serving stack returns instead of hanging,
// crashing, or collapsing every failure into an untyped 500. Each type
// maps to one HTTP status in copse-serve and the cluster worker/gateway
// handlers:
//
//	*OverloadError         → 429 Too Many Requests (+ Retry-After)
//	*DeadlineError         → 504 Gateway Timeout
//	*InternalError         → 500 Internal Server Error
//	cluster.ShardError     → 502 Bad Gateway
//	cluster.ModelUnavailableError → 503 Service Unavailable

// OverloadError is the typed load-shedding rejection: the service's
// in-flight slots are all busy and the shed-queue bound (WithShedQueue)
// is already full of waiters, so admitting the call would only grow an
// unserviceable backlog. Callers should back off for RetryAfter and
// retry; the work was rejected before any homomorphic op was spent.
type OverloadError struct {
	// Model is the model the rejected call addressed.
	Model string
	// Queued is the number of calls already waiting for a slot.
	Queued int
	// RetryAfter estimates when a slot is likely to be free (queue depth
	// times the model's observed pass latency over the in-flight width);
	// zero when the service has no latency history yet.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("copse: model %q overloaded (%d calls queued); retry in %v", e.Model, e.Queued, e.RetryAfter)
}

// DeadlineError is the typed fail-fast rejection for a request whose
// remaining context budget cannot cover the work ahead of it: burning
// an expensive homomorphic pass that is doomed to miss its deadline
// wastes server work and leaks timing, so the stack rejects it before
// the stage starts instead of during it.
type DeadlineError struct {
	// Stage names the pipeline stage that could not fit the budget
	// ("admit", "encrypt", "fanout", "merge", "decode").
	Stage string
	// Remaining is the budget left when the check ran.
	Remaining time.Duration
	// Needed is the estimated (or minimum) cost of the remaining work;
	// zero when the budget was already exhausted outright.
	Needed time.Duration
}

func (e *DeadlineError) Error() string {
	if e.Needed > 0 {
		return fmt.Sprintf("copse: deadline cannot cover %s stage (%v remaining, ~%v needed)", e.Stage, e.Remaining, e.Needed)
	}
	return fmt.Sprintf("copse: deadline exhausted before %s stage (%v remaining)", e.Stage, e.Remaining)
}

// InternalError is a panic recovered inside a serving goroutine —
// a batcher pass, a worker-pool fan-out, or the classification pipeline
// itself — converted into a per-request failure so one poisoned request
// cannot take down the process (and every other in-flight request) with
// it. The panic value and stack are preserved for diagnosis.
type InternalError struct {
	// Op names where the panic was recovered ("classify", "batcher",
	// "shard fan-out", ...).
	Op string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("copse: internal error in %s: recovered panic: %v", e.Op, e.Value)
}
