module copse

go 1.24.0
